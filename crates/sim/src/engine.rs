//! The trace replay engine.
//!
//! One pass over the invocation stream; for every invocation:
//!
//! 1. lapse expired containers on every fleet node (settling their
//!    keep-alive carbon against the invocation that scheduled them);
//! 2. classify warm/cold (a warm container is consumed by the start);
//! 3. ask the [`Scheduler`] for execution placement and keep-alive
//!    (execution is forced to the warm location when one exists —
//!    Sec. IV-D);
//! 4. account service time (setup + cold start + execution on the chosen
//!    node) and service carbon (Sec. II model, time-averaged CI);
//! 5. install the keep-alive container, running the scheduler's warm-pool
//!    adjustment on overflow; displaced containers are retried against
//!    the plan's transfer targets in order (every other node, by default).
//!
//! At end of trace, still-warm containers are settled at their expiry —
//! every scheduled keep-alive is fully charged, so schedulers cannot game
//! the horizon.
//!
//! Two drivers share that per-invocation step: [`Simulation::run`] (the
//! single-threaded reference) and [`Simulation::run_sharded`] (the
//! million-invocation path: `FunctionId`-hash shards replayed in
//! parallel, cross-shard node memory reconciled deterministically per
//! period — see [`crate::shard`]).
//!
//! ## Telemetry
//!
//! Every observable action can additionally be emitted as a
//! hash-chained event stream ([`ecolife_telemetry`]): pass a sink to
//! [`Simulation::run_with_sink`] / [`Simulation::run_sharded_with_sink`].
//! Both engines *collect* `(EventKey, Event)` pairs and only sort,
//! number, and hash them at end of run, under canonical keys (global
//! invocation index anchors — see [`ecolife_telemetry::event`]), so the
//! sharded stream is byte-identical to the sequential one whenever the
//! runs themselves are (no reconciliation revocations). The sink is a
//! *type* parameter: with [`NullSink`] (`ENABLED = false`, what
//! [`Simulation::run`] uses) every collection site is
//! compile-time dead code, which is why telemetry lives here as a
//! generic rather than a `SimConfig` field — `SimConfig` is `Copy`, and
//! monomorphization is what makes the disabled path cost nothing.

use crate::cluster::Cluster;
use crate::container::WarmContainer;
use crate::executor::{Admission, ExecutorConfig};
use crate::faults::{Fault, FaultPlan};
use crate::membership::{MembershipEvent, MembershipPlan};
use crate::metrics::{InvocationRecord, RunMetrics};
use crate::parallel::{default_threads, WorkerPool};
use crate::pool::ExpiryMode;
use crate::scheduler::{
    Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx, Scheduler,
};
use crate::shard::{merge_metrics, shard_of, MemoryLedger, ShardOptions};
use ecolife_carbon::{
    CarbonIntensityTrace, CarbonModel, CiBundle, CiError, CiProvider, StalenessPolicy, TransferCost,
};
use ecolife_hw::{Fleet, HardwareNode, NodeId, PerfModel};
use ecolife_telemetry::{finalize, lane, Event, EventKey, EventSink, NullSink, ReleaseCause};
use ecolife_trace::{Invocation, Trace};

/// Collected-but-not-yet-finalized telemetry: canonical key + event.
type EventList = Vec<(EventKey, Event)>;

/// What one settlement charged — returned by `settle` so call sites
/// (which know *why* the container left: expiry, reuse, replacement,
/// displacement, revocation) can emit the matching event. `None` means
/// the stay had zero duration and nothing was charged.
#[derive(Debug, Clone, Copy, Default)]
struct Settlement {
    keepalive_g: f64,
    energy_kwh: f64,
}

/// Per-invocation event emission: numbers lane-6 events in code order so
/// the finalized stream reads exactly like the sequential engine
/// executed the step.
struct StepEvents<'e> {
    index: usize,
    sub: u32,
    buf: &'e mut EventList,
}

impl StepEvents<'_> {
    #[inline]
    fn push(&mut self, event: Event) {
        self.buf.push((
            EventKey::new(self.index as u64, lane::INVOCATION, self.sub, 0),
            event,
        ));
        self.sub += 1;
    }
}

/// Build the `Released` event for a container that left `node`'s pool at
/// `end_ms` (call before any mutation of `c.warm_since_ms`).
fn released(
    cause: ReleaseCause,
    node: NodeId,
    c: &WarmContainer,
    end_ms: u64,
    s: Settlement,
) -> Event {
    Event::Released {
        cause,
        node: node.0,
        func: c.func.0,
        since_ms: c.warm_since_ms,
        end_ms,
        keepalive_g: s.keepalive_g,
        energy_kwh: s.energy_kwh,
    }
}

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Fixed platform *setup* overhead added to every service time (ms).
    ///
    /// The paper's service time "includes queuing delay, setup delay,
    /// cold start (if applicable), and execution time". With bounded
    /// executors **off** (`bounded_executors == None`, the default) the
    /// replay has unlimited per-node concurrency and no queue to
    /// measure, so this one constant stands in for *both* queuing and
    /// setup. With bounded executors **on** the engine measures real
    /// per-node queueing delay and adds it separately
    /// ([`InvocationRecord::queue_ms`]); this constant then covers setup
    /// only — do not inflate it to approximate queuing, or the delay is
    /// double-counted.
    pub setup_delay_ms: u64,
    /// The carbon model (embodied scaling etc.).
    pub carbon_model: CarbonModel,
    /// How warm pools find lapsed containers: the expiry timeline
    /// (default — a min-heap peek instead of a per-invocation pool
    /// scan) or the original scan, kept as the bit-identity reference
    /// ([`ExpiryMode::Scan`]). Records are identical either way; only
    /// wall-clock differs.
    pub expiry: ExpiryMode,
    /// Price of a cross-node container migration (egress grams at the
    /// source grid + re-warm latency). Defaults to
    /// [`TransferCost::free`]: every charge site adds `+ 0.0`/`+ 0`, so
    /// a free-priced run is bit-identical to the pre-pricing engine.
    pub transfer_cost: TransferCost,
    /// Cadence of the periodic re-placement pass, in minutes; `0`
    /// (default) disables it. Every `N` minutes the engine ranks each
    /// node's long-lived warm containers against `(current CI,
    /// migration cost)` and drains them toward the cleanest grid when
    /// the remaining keep-alive on a cleaner node — plus the egress
    /// price — beats staying put. Pure in `(t, region)`, so sharded
    /// replay stays thread-invariant.
    pub replacement_every_min: u64,
    /// Bounded per-node executors ([`crate::executor`]): `None`
    /// (default) replays with unlimited concurrency per node —
    /// byte-identical to the pre-service engine, goldens included.
    /// `Some(cfg)` caps each node at its core count
    /// ([`ecolife_hw::CpuModel::executor_slots`]); saturated nodes
    /// queue arrivals (measured wait lands in
    /// [`InvocationRecord::queue_ms`] and the service time), and
    /// arrivals beyond `cfg.queue_cap` are rejected. In sharded runs
    /// each shard's executors see only shard-local load, so the
    /// determinism pin is against the *sequential* engine; replay
    /// remains thread-invariant at any fixed shard count.
    pub bounded_executors: Option<ExecutorConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            setup_delay_ms: 50,
            carbon_model: CarbonModel::default(),
            expiry: ExpiryMode::default(),
            transfer_cost: TransferCost::free(),
            replacement_every_min: 0,
            bounded_executors: None,
        }
    }
}

impl SimConfig {
    /// This config with an explicit expiry implementation.
    pub fn with_expiry(mut self, expiry: ExpiryMode) -> Self {
        self.expiry = expiry;
        self
    }

    /// This config with priced migrations.
    pub fn with_transfer_cost(mut self, cost: TransferCost) -> Self {
        self.transfer_cost = cost;
        self
    }

    /// This config with the re-placement pass running every
    /// `every_min` minutes (`0` disables).
    pub fn with_replacement_every_min(mut self, every_min: u64) -> Self {
        self.replacement_every_min = every_min;
        self
    }

    /// This config with bounded per-node executors (cores-limited
    /// concurrency, measured queueing delay, admission control). See
    /// [`SimConfig::bounded_executors`].
    pub fn with_bounded_executors(mut self, config: ExecutorConfig) -> Self {
        self.bounded_executors = Some(config);
        self
    }
}

/// Cursors into the engine's fleet timeline (re-placement passes +
/// membership events + fault-plan crash instants), advanced lazily:
/// before each invocation and once more at the horizon, every due event
/// is applied in time order. Each shard owns one — the timeline is
/// replayed identically against every cluster slice.
#[derive(Debug, Clone, Copy)]
struct FleetTimeline {
    /// Next re-placement pass index (pass `k` fires at
    /// `k * replacement_every_min * MINUTE_MS`; `k = 0` never fires).
    next_pass: u64,
    /// Next unapplied entry of the membership plan.
    next_member: usize,
    /// Next unapplied crash instant of the fault plan (recoveries are
    /// passive — [`FaultPlan::is_crashed`] simply stops matching — so
    /// only the "down" moments carry state changes).
    next_fault: usize,
}

impl FleetTimeline {
    fn new() -> Self {
        FleetTimeline {
            next_pass: 1,
            next_member: 0,
            next_fault: 0,
        }
    }
}

/// One-shot evaluation: replay `trace` over `fleet` under `scheduler`
/// with the default engine config and return the full metrics.
///
/// This is the entry point batch evaluators build on — the capacity
/// planner scores every candidate fleet by calling it once per genome —
/// and is exactly `Simulation::new(trace, ci, fleet).run(scheduler)`.
/// It is deterministic: same inputs, same metrics, on any thread.
pub fn evaluate<S: Scheduler>(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: impl Into<Fleet>,
    scheduler: &mut S,
) -> RunMetrics {
    Simulation::new(trace, ci, fleet).run(scheduler)
}

/// [`evaluate`] over a multi-region fleet: each node reads the CI series
/// of its own region from `bundle`
/// (exactly `Simulation::try_new_regional(..)?.run(scheduler)`).
pub fn evaluate_regional<S: Scheduler>(
    trace: &Trace,
    bundle: &CiBundle,
    fleet: impl Into<Fleet>,
    scheduler: &mut S,
) -> Result<RunMetrics, CiError> {
    Ok(Simulation::try_new_regional(trace, bundle, fleet)?.run(scheduler))
}

/// Sharded one-shot evaluation: [`evaluate`], but fanned out over
/// `opts.shards` function-hash shards (see [`Simulation::run_sharded`]).
/// `factory(shard)` builds one scheduler per shard.
pub fn evaluate_sharded<S, F>(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: impl Into<Fleet>,
    factory: F,
    opts: &ShardOptions,
) -> RunMetrics
where
    S: Scheduler + Send,
    F: Fn(usize) -> S,
{
    Simulation::new(trace, ci, fleet).run_sharded(factory, opts)
}

/// [`evaluate_sharded`] over a multi-region fleet (per-node CI resolved
/// from `bundle`).
pub fn evaluate_sharded_regional<S, F>(
    trace: &Trace,
    bundle: &CiBundle,
    fleet: impl Into<Fleet>,
    factory: F,
    opts: &ShardOptions,
) -> Result<RunMetrics, CiError>
where
    S: Scheduler + Send,
    F: Fn(usize) -> S,
{
    Ok(Simulation::try_new_regional(trace, bundle, fleet)?.run_sharded(factory, opts))
}

/// One shard's private slice of the cluster: its own warm pools (one per
/// fleet node), metrics accumulator, scheduler instance, and sub-trace.
struct ShardState<S> {
    /// This shard's index — its row in the memory ledger.
    shard_id: usize,
    cluster: Cluster,
    metrics: RunMetrics,
    scheduler: S,
    /// This shard's invocations, as global indices into the (sorted)
    /// trace. The processed prefix is also the record→global-index map
    /// the merge uses: records are pushed in exactly this order.
    jobs: Vec<usize>,
    /// Next unprocessed entry of `jobs`.
    cursor: usize,
    /// Period span cursors: `jobs[..ends[k]]` is exactly the prefix due
    /// by the end of active period `k` (jobs are time-ordered because
    /// the trace is), precomputed once so the replay loop runs each
    /// period's span without a per-invocation time comparison.
    ends: Vec<usize>,
    /// This shard's collected telemetry (empty unless the run's sink is
    /// enabled); the coordinator concatenates and finalization sorts by
    /// canonical key.
    events: EventList,
    /// This shard's cursors into the fleet timeline (re-placement passes
    /// and membership events) — every shard replays the same timeline
    /// against its own cluster slice.
    timeline: FleetTimeline,
}

/// A configured simulation, ready to run against any scheduler.
#[derive(Debug)]
pub struct Simulation<'a> {
    trace: &'a Trace,
    ci: CiProvider<'a>,
    fleet: Fleet,
    config: SimConfig,
    membership: MembershipPlan,
    faults: FaultPlan,
}

impl<'a> Simulation<'a> {
    /// Build a simulation over a fleet (an
    /// [`ecolife_hw::HardwarePair`] converts implicitly into its
    /// two-node fleet), every node reading the one shared CI series —
    /// the paper's single-region setup.
    ///
    /// # Panics
    /// Panics when the CI series ends before the workload does (see
    /// [`Simulation::try_new`] for the fallible form). A series that
    /// runs out used to freeze silently at its last sample, corrupting
    /// every carbon total after that point; it is now a loud
    /// construction-time error, with
    /// [`CarbonIntensityTrace::extend_cyclic`] as the explicit opt-in
    /// for covering longer horizons.
    pub fn new(trace: &'a Trace, ci: &'a CarbonIntensityTrace, fleet: impl Into<Fleet>) -> Self {
        Self::try_new(trace, ci, fleet).unwrap_or_else(|e| panic!("invalid simulation: {e}"))
    }

    /// Fallible [`Simulation::new`]: returns [`CiError::TooShort`] when
    /// the CI series does not cover the workload span.
    pub fn try_new(
        trace: &'a Trace,
        ci: &'a CarbonIntensityTrace,
        fleet: impl Into<Fleet>,
    ) -> Result<Self, CiError> {
        let fleet = fleet.into();
        let provider = CiProvider::shared(ci, &fleet);
        Self::from_provider(trace, provider, fleet)
    }

    /// Build a multi-region simulation: each node reads the series of
    /// its own [`Region`](ecolife_hw::Region) from `bundle`. Fails when
    /// a node's region has no series or any series ends before the
    /// workload does.
    pub fn try_new_regional(
        trace: &'a Trace,
        bundle: &'a CiBundle,
        fleet: impl Into<Fleet>,
    ) -> Result<Self, CiError> {
        let fleet = fleet.into();
        let provider = CiProvider::from_bundle(bundle, &fleet)?;
        Self::from_provider(trace, provider, fleet)
    }

    /// Shared construction tail: validate that every node's series
    /// covers the workload span (`trace.horizon_ms()` — the last
    /// arrival must read a real sample, never a clamped one).
    fn from_provider(trace: &'a Trace, ci: CiProvider<'a>, fleet: Fleet) -> Result<Self, CiError> {
        if !trace.is_empty() && ci.min_len_ms() <= trace.horizon_ms() {
            let node = fleet
                .ids()
                .min_by_key(|&id| ci.series(id).len_ms())
                .expect("fleet is non-empty");
            return Err(CiError::TooShort {
                region: ci.region(node),
                ci_ms: ci.series(node).len_ms(),
                required_ms: trace.horizon_ms() + 1,
            });
        }
        Ok(Simulation {
            trace,
            ci,
            fleet,
            config: SimConfig::default(),
            membership: MembershipPlan::default(),
            faults: FaultPlan::default(),
        })
    }

    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach an online-membership timeline (see
    /// [`MembershipPlan`]): nodes leave (their warm pools drain through
    /// the priced migration ranking) and rejoin mid-trace. The default
    /// empty plan is exactly the fixed-fleet engine.
    pub fn with_membership(mut self, plan: MembershipPlan) -> Self {
        self.membership = plan;
        self
    }

    /// Attach a deterministic fault-injection timeline (see
    /// [`FaultPlan`]): node crashes drain warm pools ungracefully, CI
    /// outages freeze the provider at last-known-good data (applied to
    /// the provider here, once — the overlay is input-derived), and
    /// partitions make cross-partition transfers fail and retry on the
    /// plan's deterministic backoff schedule. The default empty plan is
    /// exactly the fault-free engine, byte for byte.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.ci.apply_outages(&plan.outage_spans());
        self.faults = plan;
        self
    }

    /// Override the CI [`StalenessPolicy`] — how long the scheduler keeps
    /// trusting last-known-good carbon data during a feed outage before
    /// switching to the carbon-agnostic fallback, and how long the
    /// fallback keep-alive runs. The default is
    /// [`StalenessPolicy::default`].
    pub fn with_staleness(mut self, policy: StalenessPolicy) -> Self {
        self.ci = self.ci.with_staleness(policy);
        self
    }

    /// The per-node CI resolution this simulation runs under.
    pub fn ci(&self) -> &CiProvider<'a> {
        &self.ci
    }

    /// Run `scheduler` over the trace, producing the full metrics.
    ///
    /// This is the single-threaded reference path; [`Simulation::run_sharded`]
    /// fans the same per-invocation semantics out over `FunctionId`-hash
    /// shards and is record-for-record identical whenever shards never
    /// contend for a node's memory.
    pub fn run<S: Scheduler>(&self, scheduler: &mut S) -> RunMetrics {
        self.run_with_sink(scheduler, &mut NullSink)
    }

    /// [`Simulation::run`], additionally emitting the hash-chained event
    /// stream through `sink` (see the module docs). With [`NullSink`]
    /// this *is* `run` — every collection site is compile-time dead code.
    pub fn run_with_sink<S: Scheduler, K: EventSink>(
        &self,
        scheduler: &mut S,
        sink: &mut K,
    ) -> RunMetrics {
        let engine = self.engine();
        let mut state = engine.begin();
        state.metrics.records.reserve(self.trace.len());
        scheduler.prepare(self.trace);
        for (index, inv) in self.trace.invocations().iter().enumerate() {
            engine.ingest::<S, K>(&mut state, index, inv, scheduler);
        }
        engine.finish::<K>(&mut state);
        engine.seal::<K>(state, sink)
    }

    /// The shared per-invocation core this simulation drives — the same
    /// [`Engine`] the live service (`ecolife-service`) re-creates per
    /// arrival over its growing trace, which is what makes the two
    /// drivers bit-identical.
    pub fn engine(&self) -> Engine<'_> {
        Engine {
            trace: self.trace,
            ci: &self.ci,
            fleet: &self.fleet,
            config: &self.config,
            membership: &self.membership,
            faults: &self.faults,
        }
    }

    /// Replay the trace over `shards` function-hash shards in parallel.
    ///
    /// `factory(shard)` builds one scheduler per shard (each is
    /// `prepare`d with the **full** trace, so oracle-family baselines
    /// keep their global-index future knowledge); every invocation is
    /// routed to [`shard_of`]`(func, shards)` and replayed with the exact
    /// sequential [`Simulation::run`] semantics against that shard's own
    /// pools. Cross-shard node memory goes through the atomic
    /// [`MemoryLedger`](crate::shard): within a period each shard admits
    /// against a start-of-period snapshot of the other shards' bytes; at
    /// every period boundary a deterministic reconciliation pass expires
    /// lapsed containers, revokes over-capacity admissions (youngest
    /// `warm_since_ms` first, ties against the higher `FunctionId`),
    /// and retries them on the remaining nodes in id order.
    ///
    /// **Determinism guarantee:** for fixed `(trace, ci, fleet, config,
    /// factory, shards, period_ms)` the result is bit-identical at any
    /// worker-thread count (shard work depends only on the shard's
    /// sub-trace and barrier-time snapshots, never on scheduling). Across
    /// *shard counts* — including against the sequential [`Simulation::run`] —
    /// records and counters are bit-identical whenever no reconciliation
    /// revocation occurs ([`RunMetrics::reconcile_revocations`]` == 0`);
    /// per-node gram totals then agree up to float-summation order.
    pub fn run_sharded<S, F>(&self, factory: F, opts: &ShardOptions) -> RunMetrics
    where
        S: Scheduler + Send,
        F: Fn(usize) -> S,
    {
        self.run_sharded_with_sink(factory, opts, &mut NullSink)
    }

    /// [`Simulation::run_sharded`], additionally emitting the
    /// hash-chained event stream through `sink`.
    ///
    /// Shards collect events locally under canonical global-index keys;
    /// the coordinator concatenates and finalization sorts — the same
    /// discipline as the `RunMetrics` merge — so the serialized stream
    /// (and therefore the chain tip) is identical at any shard/thread
    /// count, and byte-identical to the sequential stream whenever the
    /// runs themselves are (`reconcile_revocations == 0`).
    pub fn run_sharded_with_sink<S, F, K>(
        &self,
        factory: F,
        opts: &ShardOptions,
        sink: &mut K,
    ) -> RunMetrics
    where
        S: Scheduler + Send,
        F: Fn(usize) -> S,
        K: EventSink,
    {
        // `ShardOptions`' fields are public; re-validate here so a
        // hand-built value fails with a clear message instead of a
        // divide-by-zero below.
        assert!(opts.shards > 0, "need at least one shard");
        assert!(opts.period_ms > 0, "period must be positive");
        let n_shards = opts.shards;
        let n_nodes = self.fleet.len();
        let node_ids: Vec<NodeId> = self.fleet.ids().collect();

        // Shard states: own cluster, metrics, scheduler, sub-trace
        // (global indices into the shared sorted trace — no invocation
        // copies).
        let mut states: Vec<ShardState<S>> = (0..n_shards)
            .map(|s| {
                let mut scheduler = factory(s);
                scheduler.prepare(self.trace);
                let mut cluster = Cluster::with_expiry(self.fleet.clone(), self.config.expiry);
                if let Some(cfg) = self.config.bounded_executors {
                    cluster.enable_executors(cfg);
                }
                ShardState {
                    shard_id: s,
                    cluster,
                    metrics: RunMetrics {
                        keepalive_g_by_node: vec![0.0; n_nodes],
                        transfer_g_by_node: vec![0.0; n_nodes],
                        queue_ms_by_node: vec![0; n_nodes],
                        ..RunMetrics::default()
                    },
                    scheduler,
                    jobs: Vec::new(),
                    cursor: 0,
                    ends: Vec::new(),
                    events: Vec::new(),
                    timeline: FleetTimeline::new(),
                }
            })
            .collect();
        for (index, inv) in self.trace.invocations().iter().enumerate() {
            states[shard_of(inv.func, n_shards)].jobs.push(index);
        }

        // Periods that actually contain work, in time order (the trace is
        // sorted); empty stretches are skipped without changing semantics
        // because reconciliation runs before each active period either way.
        let mut periods: Vec<u64> = self
            .trace
            .invocations()
            .iter()
            .map(|inv| inv.t_ms / opts.period_ms)
            .collect();
        periods.dedup();

        // Batch each shard's per-period decision spans up front: one
        // O(jobs + periods) pass per shard replaces the per-invocation
        // `t_ms >= t_end` comparison the replay loop used to make.
        for state in &mut states {
            let mut j = 0usize;
            state.ends = Vec::with_capacity(periods.len());
            for &period in &periods {
                let t_end = period
                    .saturating_mul(opts.period_ms)
                    .saturating_add(opts.period_ms);
                while j < state.jobs.len() && self.trace.invocations()[state.jobs[j]].t_ms < t_end {
                    j += 1;
                }
                state.ends.push(j);
            }
            debug_assert_eq!(state.ends.last().copied().unwrap_or(0), state.jobs.len());
        }

        let workers = opts.threads.unwrap_or_else(default_threads).max(1);
        let ledger = MemoryLedger::new(n_shards, n_nodes);
        let mut ledger_peak_mib = vec![0u64; n_nodes];

        // One persistent worker pool for the whole run: periods are
        // barrier-separated batches over the same threads, instead of a
        // fresh scoped-thread set per reconciliation period (hundreds of
        // spawn/join cycles on an hours-long trace).
        let mut pool = WorkerPool::new(workers.min(n_shards));
        let engine = self.engine();

        for (k, &period) in periods.iter().enumerate() {
            let t_start = period.saturating_mul(opts.period_ms);

            // Barrier phase (coordinator, deterministic shard/node
            // order): reconcile, then bring the ledger's atomic cells up
            // to date by applying each pool's accumulated occupancy
            // delta — the flat per-period buffer every shard's
            // admissions/expiries/reconcile moves funded — in one pass,
            // instead of re-snapshotting every pool.
            engine.reconcile::<S, K>(t_start, &node_ids, &mut states, &mut ledger_peak_mib);
            for (s, state) in states.iter_mut().enumerate() {
                for &id in &node_ids {
                    let delta = state.cluster.pool_mut(id).take_period_delta_mib();
                    ledger.adjust(s, id, delta);
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        ledger.cell_mib(s, id),
                        state.cluster.pool(id).used_mib(),
                        "delta-maintained ledger cell diverged from pool occupancy"
                    );
                }
            }

            // Parallel phase: each worker first pulls its shard's
            // cross-shard pressure snapshot from the ledger (concurrent
            // reads of values fixed before the batch — deterministic),
            // then replays its precomputed span of the period against
            // its own pools. Which worker runs which shard never affects
            // the outcome.
            states = pool.run_map(states, |mut state| {
                for &id in &node_ids {
                    let pressure = ledger.external_mib(state.shard_id, id);
                    state.cluster.pool_mut(id).set_external_used_mib(pressure);
                }
                let stop = state.ends[k];
                while state.cursor < stop {
                    let index = state.jobs[state.cursor];
                    let inv = self.trace.invocations()[index];
                    let ShardState {
                        cluster,
                        metrics,
                        scheduler,
                        events,
                        timeline,
                        ..
                    } = &mut state;
                    engine.catch_up::<K>(timeline, cluster, metrics, events, inv.t_ms);
                    engine
                        .step::<S, K>(index, &inv, &node_ids, cluster, scheduler, metrics, events);
                    state.cursor += 1;
                }
                state
            });
        }

        // Final reconciliation (capacity holds at the horizon too), then
        // end-of-run settlement in shard/node order.
        let t_final = periods
            .last()
            .map(|p| (p + 1).saturating_mul(opts.period_ms))
            .unwrap_or(0);
        engine.reconcile::<S, K>(t_final, &node_ids, &mut states, &mut ledger_peak_mib);
        for state in &mut states {
            let ShardState {
                cluster,
                metrics,
                events,
                timeline,
                ..
            } = state;
            // Idempotent horizon catch-up: reconcile already advanced
            // every shard to `min(t_final, horizon)`, but an empty trace
            // has no periods (and thus no reconcile calls) — timeline
            // events at t = 0 must still fire before the drain.
            let horizon = if self.trace.is_empty() {
                0
            } else {
                self.trace.horizon_ms()
            };
            engine.catch_up::<K>(timeline, cluster, metrics, events, horizon);
            engine.drain::<K>(&node_ids, cluster, metrics, events);
        }

        // Gather every shard's collected telemetry before the states are
        // consumed by the merge; finalization sorts by canonical key.
        let mut stream: EventList = Vec::new();
        if K::ENABLED {
            for state in &mut states {
                stream.append(&mut state.events);
            }
        }

        let mut metrics = merge_metrics(
            self.trace.len(),
            n_nodes,
            // A shard's records were pushed in `jobs` order and every
            // job was processed, so `jobs` doubles as the record→global
            // index map.
            states.into_iter().map(|s| (s.jobs, s.metrics)).collect(),
            ledger_peak_mib,
        );
        // Input-derived, set once by the coordinator (shards keep 0):
        // summing it per shard would multiply the same outage span.
        metrics.stale_ci_minutes = engine.stale_minutes();
        if K::ENABLED {
            engine.finish_stream(stream, &metrics, sink);
        }
        metrics
    }
}

/// The shared per-invocation core both drivers execute: the batch
/// replayer ([`Simulation::run`] / [`Simulation::run_sharded`]) and the
/// live service (`ecolife-service`).
///
/// An `Engine` is six references — trace, CI resolution, fleet, config,
/// membership plan, fault plan — so it is free to re-create per arrival, which is
/// exactly what the service does over its *growing* trace: after pushing
/// arrival `i` it rebuilds the engine over the prefix and calls
/// [`Engine::ingest`]. Because the trace is time-sorted, every canonical
/// stream anchor ([`ecolife_telemetry::EventKey::pos`], a
/// `partition_point` over arrival times) computed against the prefix
/// equals the one computed against the full trace for any instant at or
/// before the current arrival — so a service-driven run serializes
/// bit-for-bit like the batch replay of the same workload.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'r> {
    trace: &'r Trace,
    ci: &'r CiProvider<'r>,
    fleet: &'r Fleet,
    config: &'r SimConfig,
    membership: &'r MembershipPlan,
    faults: &'r FaultPlan,
}

/// The mutable half of one run, owned by whoever drives the [`Engine`]:
/// cluster (pools + executors), metrics, collected telemetry, and the
/// fleet-timeline cursors. Built by [`Engine::begin`], advanced by
/// [`Engine::ingest`], closed by [`Engine::finish`] +
/// [`Engine::seal`].
#[derive(Debug)]
pub struct RunState {
    cluster: Cluster,
    metrics: RunMetrics,
    node_ids: Vec<NodeId>,
    events: EventList,
    timeline: FleetTimeline,
}

impl RunState {
    /// The metrics accumulated so far (final after [`Engine::finish`]).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The live cluster state (pools, membership, executor occupancy).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl<'r> Engine<'r> {
    /// Assemble an engine from borrowed parts. [`Simulation::engine`] is
    /// the batch form; the live service calls this directly with its own
    /// growing trace. Callers are responsible for CI coverage (the
    /// service checks each arrival against
    /// [`CiProvider::min_len_ms`]; [`Simulation`] validates the whole
    /// horizon at construction).
    pub fn new(
        trace: &'r Trace,
        ci: &'r CiProvider<'r>,
        fleet: &'r Fleet,
        config: &'r SimConfig,
        membership: &'r MembershipPlan,
        faults: &'r FaultPlan,
    ) -> Self {
        Engine {
            trace,
            ci,
            fleet,
            config,
            membership,
            faults,
        }
    }

    /// Fresh run state: empty pools (executors attached when the config
    /// bounds them), zeroed metrics sized to the fleet, timeline at the
    /// origin.
    pub fn begin(&self) -> RunState {
        let mut cluster = Cluster::with_expiry((*self.fleet).clone(), self.config.expiry);
        if let Some(cfg) = self.config.bounded_executors {
            cluster.enable_executors(cfg);
        }
        let n = self.fleet.len();
        RunState {
            cluster,
            metrics: RunMetrics {
                keepalive_g_by_node: vec![0.0; n],
                transfer_g_by_node: vec![0.0; n],
                queue_ms_by_node: vec![0; n],
                ..RunMetrics::default()
            },
            node_ids: self.fleet.ids().collect(),
            events: Vec::new(),
            timeline: FleetTimeline::new(),
        }
    }

    /// Advance one invocation: replay every fleet-timeline event due by
    /// its arrival, then run the per-invocation step (expire, classify,
    /// decide, admit, account, install keep-alive). `index` is the
    /// invocation's global trace position; arrivals must come in
    /// nondecreasing `t_ms`, which the sorted trace guarantees for batch
    /// and the service enforces at its ingest door.
    pub fn ingest<S: Scheduler, K: EventSink>(
        &self,
        state: &mut RunState,
        index: usize,
        inv: &Invocation,
        scheduler: &mut S,
    ) {
        let RunState {
            cluster,
            metrics,
            node_ids,
            events,
            timeline,
        } = state;
        self.catch_up::<K>(timeline, cluster, metrics, events, inv.t_ms);
        self.step::<S, K>(index, inv, node_ids, cluster, scheduler, metrics, events);
    }

    /// Close the run: fire remaining fleet-timeline events up to the
    /// horizon, then settle every live keep-alive in full (and record
    /// final executor occupancy peaks).
    pub fn finish<K: EventSink>(&self, state: &mut RunState) {
        let RunState {
            cluster,
            metrics,
            node_ids,
            events,
            timeline,
        } = state;
        let horizon = if self.trace.is_empty() {
            0
        } else {
            self.trace.horizon_ms()
        };
        self.catch_up::<K>(timeline, cluster, metrics, events, horizon);
        self.drain::<K>(node_ids, cluster, metrics, events);
        metrics.stale_ci_minutes = self.stale_minutes();
    }

    /// Input-derived stale-feed minutes: every CI outage span clipped to
    /// the horizon, counted only for regions some fleet node actually
    /// reads. Set once per run (the sharded coordinator applies it after
    /// the merge), never accumulated per shard.
    fn stale_minutes(&self) -> u64 {
        if self.faults.is_empty() {
            return 0;
        }
        let horizon = if self.trace.is_empty() {
            0
        } else {
            self.trace.horizon_ms()
        };
        self.faults.stale_ci_minutes(horizon, |r| {
            self.ci.distinct_regions().any(|(fr, _)| fr == r)
        })
    }

    /// Serialize the collected telemetry (when `K` is enabled) and hand
    /// back the final metrics. Call after [`Engine::finish`].
    pub fn seal<K: EventSink>(&self, state: RunState, sink: &mut K) -> RunMetrics {
        let RunState {
            metrics, events, ..
        } = state;
        if K::ENABLED {
            self.finish_stream(events, &metrics, sink);
        }
        metrics
    }

    /// One invocation of the replay loop (shared verbatim by the
    /// sequential and sharded paths): expire, classify warm/cold, ask the
    /// scheduler, account service time and carbon, install the
    /// keep-alive. `index` is the invocation's *global* trace position
    /// (what `InvocationCtx::index` promises schedulers); the record
    /// lands at `metrics.records.len()`, which the sharded path maps
    /// back to `index` when merging.
    #[allow(clippy::too_many_arguments)]
    fn step<S: Scheduler, K: EventSink>(
        &self,
        index: usize,
        inv: &Invocation,
        node_ids: &[NodeId],
        cluster: &mut Cluster,
        scheduler: &mut S,
        metrics: &mut RunMetrics,
        events: &mut EventList,
    ) {
        let t = inv.t_ms;
        let profile = self.trace.catalog().profile(inv.func);

        // (1) Lapse expired containers, node by node in id order.
        for &id in node_ids {
            let expired = cluster.pool_mut(id).expire_until(t);
            for c in expired {
                let s = self.settle(&c, cluster.node(id), c.expiry_ms, metrics);
                if K::ENABLED {
                    events.push(self.expired_event(id, &c, s));
                }
            }
        }

        // Bounded executors: retire every execution finished (and every
        // queued start reached) by now, *before* the scheduler decides —
        // this is what makes [`Cluster::queue_wait_ms`] reads exact
        // during `decide` without `&mut` access.
        if let Some(x) = cluster.executors_mut() {
            x.advance(t);
        }

        // Per-invocation (lane-6) events are numbered in code order.
        let mut ev = StepEvents {
            index,
            sub: 0,
            buf: events,
        };

        // (2) Warm or cold?
        let warm_at = cluster.warm_location(inv.func, t);

        // Graceful degradation: when some fleet region's CI feed has
        // been stale past the staleness bound, the carbon data the
        // scheduler's objective reads is fiction — bypass it entirely
        // and fall back to a carbon-agnostic choice (warm location if
        // any, else the fastest reachable node; keep-alive in place for
        // the policy's fixed budget). Counted per decision so the
        // degraded window is visible in the run metrics.
        let degraded = !self.faults.is_empty() && {
            let bound = self.ci.staleness().max_stale_ms();
            self.faults
                .blackout_regions(t, bound)
                .any(|r| self.ci.distinct_regions().any(|(fr, _)| fr == r))
        };

        // (3) Scheduler decision (timed: this is the paper's
        // decision-making overhead). Degraded decisions bypass the
        // scheduler and cost no overhead — there is nothing to compute.
        let decision = if degraded {
            metrics.degraded_decisions += 1;
            let exec = warm_at.unwrap_or_else(|| {
                self.fleet
                    .warm_preference()
                    .into_iter()
                    .find(|&id| cluster.is_active(id) && !self.faults.is_crashed(id, t))
                    .unwrap_or(NodeId(0))
            });
            let ka_ms = self
                .ci
                .staleness()
                .fallback_keepalive_min
                .saturating_mul(crate::MINUTE_MS);
            Decision {
                exec,
                keepalive: (ka_ms > 0).then_some(KeepAliveChoice {
                    location: exec,
                    duration_ms: ka_ms,
                }),
            }
        } else {
            let ctx = InvocationCtx {
                index,
                func: inv.func,
                profile,
                t_ms: t,
                warm_at,
                ci: self.ci,
                cluster,
            };
            let started = std::time::Instant::now();
            let d = scheduler.decide(&ctx);
            metrics.decision_overhead_ns += started.elapsed().as_nanos() as u64;
            d
        };
        assert!(
            self.fleet.contains(decision.exec),
            "scheduler '{}' placed execution on {:?}, outside the {}-node fleet",
            scheduler.name(),
            decision.exec,
            self.fleet.len()
        );

        let exec_loc = warm_at.unwrap_or(decision.exec);
        let warm = warm_at.is_some();

        if K::ENABLED {
            let (ka_node, ka_ms) = match decision.keepalive {
                Some(ka) => (ka.location.0 as i64, ka.duration_ms),
                None => (-1, 0),
            };
            ev.push(Event::DecisionMade {
                index: index as u64,
                func: inv.func.0,
                t_ms: t,
                exec_node: decision.exec.0,
                warm,
                ka_node,
                ka_ms,
            });
        }

        // A crashed node serves nothing: the invocation is turned away
        // at zero carbon and the decision is void — no execution, no
        // keep-alive, no `observe`. A warm location can never be down
        // (the crash drain emptied its pool and nothing is installed on
        // a down node), so only scheduler-chosen placements hit this.
        if !self.faults.is_empty() && self.faults.is_crashed(exec_loc, t) {
            debug_assert!(!warm, "warm container resident on a crashed node");
            metrics.crash_rejected += 1;
            metrics.records.push(InvocationRecord {
                func: inv.func,
                t_ms: t,
                exec_location: exec_loc,
                warm: false,
                service_ms: 0,
                queue_ms: 0,
                rejected: true,
                service_carbon: ecolife_carbon::CarbonFootprint::ZERO,
                keepalive_carbon: ecolife_carbon::CarbonFootprint::ZERO,
                energy_kwh: 0.0,
            });
            if K::ENABLED {
                ev.push(Event::CrashRejected {
                    index: index as u64,
                    func: inv.func.0,
                    node: exec_loc.0,
                    t_ms: t,
                });
            }
            return;
        }

        // (4) Execution span: peek the warm container's migration debt
        // (it is consumed below only once admission succeeds) and price
        // the time the execution will occupy its core — work + setup +
        // re-warm debt. Queueing delay, if any, is added on top.
        let transfer_debt_ms = if warm {
            cluster
                .pool(exec_loc)
                .get(inv.func)
                .map(|c| c.transfer_latency_ms)
                .unwrap_or(0)
        } else {
            0
        };
        let work_ms = {
            let node = cluster.node(exec_loc);
            if warm {
                PerfModel::warm_service_ms(node, profile.base_exec_ms, profile.cpu_sensitivity)
            } else {
                PerfModel::cold_service_ms(
                    node,
                    profile.base_exec_ms,
                    profile.base_cold_ms,
                    profile.cpu_sensitivity,
                )
            }
        };
        let exec_ms = work_ms + self.config.setup_delay_ms + transfer_debt_ms;

        // Admission: offer the execution to the node's bounded executor.
        // A free slot starts it now; a saturated node queues it (the
        // measured wait feeds the service time); a full queue rejects it.
        let mut queue_ms = 0u64;
        if let Some(x) = cluster.executors_mut() {
            match x.admit(exec_loc, t, exec_ms) {
                Admission::Rejected { depth } => {
                    metrics.rejected += 1;
                    // The decision is void: no execution, no keep-alive
                    // install, no `observe` — a warm container (if any)
                    // stays resident for a later arrival. A zero-cost
                    // record keeps record coverage total (the sharded
                    // merge asserts every invocation placed exactly one).
                    metrics.records.push(InvocationRecord {
                        func: inv.func,
                        t_ms: t,
                        exec_location: exec_loc,
                        warm: false,
                        service_ms: 0,
                        queue_ms: 0,
                        rejected: true,
                        service_carbon: ecolife_carbon::CarbonFootprint::ZERO,
                        keepalive_carbon: ecolife_carbon::CarbonFootprint::ZERO,
                        energy_kwh: 0.0,
                    });
                    if K::ENABLED {
                        ev.push(Event::AdmissionRejected {
                            index: index as u64,
                            func: inv.func.0,
                            node: exec_loc.0,
                            t_ms: t,
                            depth,
                        });
                    }
                    return;
                }
                Admission::Started {
                    start_ms,
                    queue_ms: q,
                    depth,
                } => {
                    queue_ms = q;
                    if q > 0 {
                        metrics.queue_ms_by_node[exec_loc.index()] += q;
                        if K::ENABLED {
                            ev.push(Event::Enqueued {
                                index: index as u64,
                                func: inv.func.0,
                                node: exec_loc.0,
                                t_ms: t,
                                depth,
                            });
                            ev.push(Event::Dequeued {
                                index: index as u64,
                                func: inv.func.0,
                                node: exec_loc.0,
                                start_ms,
                                queue_ms: q,
                            });
                        }
                    }
                }
            }
        }

        // A consumed warm container is settled up to the reuse instant.
        // A migrated container additionally carries its accumulated
        // transfer latency, paid once, on the first service after the
        // move (the paper's re-warm penalty).
        if warm {
            if let Some(c) = cluster.pool_mut(exec_loc).remove(inv.func) {
                debug_assert_eq!(c.transfer_latency_ms, transfer_debt_ms);
                let s = self.settle(&c, cluster.node(exec_loc), t, metrics);
                if K::ENABLED {
                    if let Some(s) = s {
                        ev.push(released(ReleaseCause::Reused, exec_loc, &c, t, s));
                    }
                }
            }
        }

        // Service time and carbon. The execution burns power over
        // `[t + queue_ms, t + queue_ms + exec_ms)` — with executors off
        // that is exactly the pre-service `[t, t + service_ms)` window.
        // CI is read on the *executing node's* grid — the heart of the
        // multi-region accounting.
        let service_ms = queue_ms + exec_ms;
        let start_ms = t + queue_ms;
        let node = cluster.node(exec_loc);
        let ci_avg = self.ci.average_over(exec_loc, start_ms, start_ms + exec_ms);
        let service_carbon =
            self.config
                .carbon_model
                .active_phase(node, profile.memory_mib, exec_ms, ci_avg);
        let energy_kwh =
            self.config
                .carbon_model
                .active_energy_kwh(node, profile.memory_mib, exec_ms);

        let record_index = metrics.records.len();
        metrics.records.push(InvocationRecord {
            func: inv.func,
            t_ms: t,
            exec_location: exec_loc,
            warm,
            service_ms,
            queue_ms,
            rejected: false,
            service_carbon,
            keepalive_carbon: ecolife_carbon::CarbonFootprint::ZERO,
            energy_kwh,
        });

        if K::ENABLED {
            let (func, node) = (inv.func.0, exec_loc.0);
            let service_g = service_carbon.total_g();
            ev.push(if warm {
                Event::WarmHit {
                    index: index as u64,
                    func,
                    node,
                    t_ms: t,
                    service_ms,
                    service_g,
                    energy_kwh,
                }
            } else {
                Event::ColdStarted {
                    index: index as u64,
                    func,
                    node,
                    t_ms: t,
                    service_ms,
                    service_g,
                    energy_kwh,
                }
            });
        }

        // (5) Install the keep-alive.
        if let Some(ka) = decision.keepalive {
            assert!(
                self.fleet.contains(ka.location),
                "scheduler '{}' placed keep-alive on {:?}, outside the {}-node fleet",
                scheduler.name(),
                ka.location,
                self.fleet.len()
            );
            if ka.duration_ms > 0 {
                let end_of_service = t + service_ms;
                let container = WarmContainer {
                    func: inv.func,
                    memory_mib: profile.memory_mib,
                    warm_since_ms: end_of_service,
                    expiry_ms: end_of_service + ka.duration_ms,
                    origin_record: record_index,
                    transfer_latency_ms: 0,
                };
                self.install_keepalive::<S, K>(
                    container,
                    ka.location,
                    t,
                    scheduler,
                    cluster,
                    metrics,
                    &mut ev,
                );
            }
        }

        // Let online schedulers learn from the outcome.
        let ctx = InvocationCtx {
            index,
            func: inv.func,
            profile,
            t_ms: t,
            warm_at,
            ci: self.ci,
            cluster,
        };
        scheduler.observe(&ctx, service_ms, warm);
    }

    /// End-of-run settlement: drain every pool, charging each live
    /// keep-alive in full (at its expiry), and fold the pools'
    /// expiry-machinery counters into the run metrics.
    fn drain<K: EventSink>(
        &self,
        node_ids: &[NodeId],
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
        events: &mut EventList,
    ) {
        for &id in node_ids {
            let remaining = cluster.pool_mut(id).drain_all();
            for c in remaining {
                let s = self.settle(&c, self.fleet.node(id), c.expiry_ms, metrics);
                if K::ENABLED {
                    events.push(self.expired_event(id, &c, s));
                }
            }
            metrics.expiry.absorb(cluster.pool(id).expiry_stats());
        }
        if let Some(peaks) = cluster.executor_peaks() {
            metrics.executor_peak_by_node = peaks;
        }
    }

    /// The deterministic cross-shard reconciliation pass, run by the
    /// coordinator at `t_now` (a period boundary) while all workers are
    /// parked:
    ///
    /// 1. expire every shard's lapsed containers (settled at expiry, the
    ///    same grams the lazy sequential path charges);
    /// 2. for each node in id order, while occupancy across shards
    ///    exceeds capacity, revoke the container with the **youngest
    ///    `warm_since_ms`** (ties: the **higher `FunctionId`** loses) —
    ///    the most recent optimistic admission — settle its stay, and
    ///    retry it against the other nodes in id order with true
    ///    cross-shard headroom (a transfer), else evict it.
    fn reconcile<S: Scheduler, K: EventSink>(
        &self,
        t_now: u64,
        node_ids: &[NodeId],
        states: &mut [ShardState<S>],
        ledger_peak_mib: &mut [u64],
    ) {
        // (0) Fleet-timeline catch-up, *before* the expiry sweep: a
        // re-placement pass or membership drain due at `tm < t_now`
        // would — in the sequential engine — have migrated containers
        // whose keep-alive then straddles the boundary; expiring them
        // first would settle the full stay on the source node and
        // diverge. A pending pass at a barrier sees exactly the pool
        // state the sequential pass at `tm` sees (no shard invocation
        // lands in `[tm, t_now)` by construction), so replaying it here
        // is order-exact. Capped at the horizon: the final reconcile
        // runs past the last arrival, where nothing fires.
        let t_cap = if self.trace.is_empty() {
            0
        } else {
            self.trace.horizon_ms()
        };
        for state in states.iter_mut() {
            let ShardState {
                cluster,
                metrics,
                events,
                timeline,
                ..
            } = state;
            self.catch_up::<K>(timeline, cluster, metrics, events, t_now.min(t_cap));
        }

        // (1) Eager expiry: the sequential engine expires on every
        // invocation; shards expire their own pools mid-period, so this
        // only brings the ledger's cross-shard view up to date. Expiry
        // events carry their *canonical* anchor (the global expiry
        // trigger), so sweeping a container here instead of mid-step
        // lands it at the exact position the sequential stream has it.
        for state in states.iter_mut() {
            for &id in node_ids {
                let expired = state.cluster.pool_mut(id).expire_until(t_now);
                for c in expired {
                    let s = self.settle(&c, self.fleet.node(id), c.expiry_ms, &mut state.metrics);
                    if K::ENABLED {
                        state.events.push(self.expired_event(id, &c, s));
                    }
                }
            }
        }

        // Reconcile-lane events (revocations and their transfer
        // retries) are anchored at the boundary's global position and
        // numbered in coordinator execution order — deterministic, and
        // absent entirely from uncontended runs.
        let rc_pos = if K::ENABLED {
            self.trigger_pos(t_now)
        } else {
            0
        };
        let mut rc_sub = 0u32;
        let mut rc_key = || {
            let key = EventKey::new(rc_pos, lane::RECONCILE, rc_sub, 0);
            rc_sub += 1;
            key
        };

        // (2) Capacity reconciliation, node by node in id order.
        for &id in node_ids {
            let capacity = self.fleet.node(id).keepalive_mem_mib;
            loop {
                let total: u64 = states.iter().map(|s| s.cluster.pool(id).used_mib()).sum();
                if total <= capacity {
                    break;
                }
                // Deterministic victim: max over the total order
                // (warm_since, func) — pool iteration order is
                // unspecified, the max is not.
                let victim = states
                    .iter()
                    .enumerate()
                    .flat_map(|(s, state)| {
                        state
                            .cluster
                            .pool(id)
                            .iter()
                            .map(move |c| (c.warm_since_ms, c.func, s))
                    })
                    .max()
                    .expect("an over-capacity pool holds at least one container");
                let (_, func, owner) = victim;
                let state = &mut states[owner];
                let mut container = state
                    .cluster
                    .pool_mut(id)
                    .remove(func)
                    .expect("victim is resident");
                let s = self.settle(&container, self.fleet.node(id), t_now, &mut state.metrics);
                state.metrics.reconcile_revocations += 1;
                if K::ENABLED {
                    // Revocations are always emitted, even when the settle
                    // charged nothing — the revocation itself is the
                    // observable act.
                    let s = s.unwrap_or_default();
                    state.events.push((
                        rc_key(),
                        Event::Revoked {
                            node: id.0,
                            func: func.0,
                            t_ms: t_now,
                            keepalive_g: s.keepalive_g,
                            energy_kwh: s.energy_kwh,
                        },
                    ));
                }

                // Retry on the remaining nodes (id order), against true
                // cross-shard headroom at this instant. Phase 1 removed
                // every container with `expiry_ms <= t_now`, so the
                // victim's keep-alive necessarily extends past this
                // boundary.
                debug_assert!(
                    container.expiry_ms > t_now,
                    "victim survived phase-1 expiry"
                );
                container.warm_since_ms = container.warm_since_ms.max(t_now);
                let egress_g = self
                    .config
                    .transfer_cost
                    .grams(container.memory_mib, self.ci.at(id, t_now));
                container.transfer_latency_ms += self.config.transfer_cost.latency_ms;
                let mut placed = false;
                for &target in &self.fleet.transfer_candidates(id) {
                    // The owner shard's membership view is authoritative
                    // (every shard replays the identical timeline), and
                    // a fault-blocked target is skipped the same way the
                    // sequential paths skip it.
                    if !states[owner].cluster.is_active(target)
                        || !self.reachable(id, target, t_now)
                    {
                        continue;
                    }
                    let target_capacity = self.fleet.node(target).keepalive_mem_mib;
                    let reclaimed = states[owner]
                        .cluster
                        .pool(target)
                        .get(func)
                        .map(|c| c.memory_mib)
                        .unwrap_or(0);
                    let target_total: u64 = states
                        .iter()
                        .map(|s| s.cluster.pool(target).used_mib())
                        .sum();
                    if target_total - reclaimed + container.memory_mib > target_capacity {
                        continue;
                    }
                    // The cross-shard check above is authoritative here;
                    // clear the stale per-period snapshot so the local
                    // insert cannot spuriously reject (it is refreshed
                    // from the ledger before the next period anyway).
                    let pool = states[owner].cluster.pool_mut(target);
                    pool.set_external_used_mib(0);
                    match pool.insert(container) {
                        Ok(replaced) => {
                            if let Some(old) = replaced {
                                let s = self.settle(
                                    &old,
                                    self.fleet.node(target),
                                    t_now,
                                    &mut states[owner].metrics,
                                );
                                if K::ENABLED {
                                    if let Some(s) = s {
                                        states[owner].events.push((
                                            rc_key(),
                                            released(
                                                ReleaseCause::Replaced,
                                                target,
                                                &old,
                                                t_now,
                                                s,
                                            ),
                                        ));
                                    }
                                }
                            }
                            states[owner].metrics.transfers += 1;
                            states[owner].metrics.transfer_g += egress_g;
                            states[owner].metrics.transfer_g_by_node[id.index()] += egress_g;
                            states[owner].metrics.transfer_ms +=
                                self.config.transfer_cost.latency_ms;
                            if K::ENABLED {
                                states[owner].events.push((
                                    rc_key(),
                                    Event::Transferred {
                                        func: func.0,
                                        from: id.0,
                                        to: target.0,
                                        t_ms: t_now,
                                        egress_g,
                                        latency_ms: self.config.transfer_cost.latency_ms,
                                    },
                                ));
                            }
                            placed = true;
                        }
                        Err(c) => {
                            debug_assert!(false, "headroom-checked insert rejected {:?}", c.func);
                        }
                    }
                    break;
                }
                if !placed {
                    states[owner].metrics.evicted_functions += 1;
                }
            }
        }

        // (3) Record the pass's outcome only after *every* node settled:
        // a victim revoked from a later-id node may transfer back into
        // an earlier one, so per-node occupancy is final — and at or
        // under capacity (transfer headroom is checked against the true
        // cross-shard sum) — only here.
        for &id in node_ids {
            let total: u64 = states.iter().map(|s| s.cluster.pool(id).used_mib()).sum();
            debug_assert!(total <= self.fleet.node(id).keepalive_mem_mib);
            let peak = &mut ledger_peak_mib[id.index()];
            *peak = (*peak).max(total);
        }
    }

    /// Insert `container` into `location`'s pool, running the scheduler's
    /// warm-pool adjustment when it does not fit.
    #[allow(clippy::too_many_arguments)]
    fn install_keepalive<S: Scheduler, K: EventSink>(
        &self,
        container: WarmContainer,
        location: NodeId,
        t: u64,
        scheduler: &mut S,
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
        ev: &mut StepEvents<'_>,
    ) {
        // A node that has left the fleet — or is down — accepts no
        // keep-alives: the choice is simply dropped (the scheduler's
        // view of membership and health is advisory; the engine's is
        // authoritative).
        if !cluster.is_active(location)
            || (!self.faults.is_empty() && self.faults.is_crashed(location, t))
        {
            metrics.evicted_functions += 1;
            return;
        }
        // Settle a replaced container of the same function (its keep-alive
        // ends now).
        if cluster.pool(location).get(container.func).is_some() {
            if let Some(old) = cluster.pool_mut(location).remove(container.func) {
                let s = self.settle(&old, cluster.node(location), t, metrics);
                if K::ENABLED {
                    if let Some(s) = s {
                        ev.push(released(ReleaseCause::Replaced, location, &old, t, s));
                    }
                }
            }
        }

        let container = match cluster.pool_mut(location).insert(container) {
            Ok(_) => return,
            Err(c) => c,
        };

        // Overflow: ask the scheduler.
        let action = {
            let ctx = OverflowCtx {
                location,
                incoming_func: container.func,
                incoming_memory_mib: container.memory_mib,
                t_ms: t,
                ci_now: self.ci.at(location, t),
                ci_by_node: self.ci.at_each_node(t),
                cluster,
            };
            scheduler.on_pool_overflow(&ctx)
        };

        match action {
            OverflowAction::Drop => {
                metrics.evicted_functions += 1;
            }
            OverflowAction::Adjust(plan) => {
                // Transfer targets: the plan's explicit ranking (the
                // overflowing pool itself is never valid), or every other
                // node in id order. Inactive nodes never receive
                // transfers; fault-blocked candidates (down, or across
                // an active partition) are set aside for the bounded
                // retry below instead of being dropped outright.
                let candidates: Vec<NodeId> = match plan.transfer_targets {
                    None => self
                        .fleet
                        .transfer_candidates(location)
                        .into_iter()
                        .filter(|&id| cluster.is_active(id))
                        .collect(),
                    Some(ref ranked) => ranked
                        .iter()
                        .copied()
                        .filter(|&id| {
                            id != location && self.fleet.contains(id) && cluster.is_active(id)
                        })
                        .collect(),
                };
                let (targets, blocked): (Vec<NodeId>, Vec<NodeId>) = if self.faults.is_empty() {
                    (candidates, Vec::new())
                } else {
                    candidates
                        .into_iter()
                        .partition(|&id| self.reachable(location, id, t))
                };
                for func in plan.displace {
                    let Some(mut displaced) = cluster.pool_mut(location).remove(func) else {
                        continue; // plan referenced a non-resident function
                    };
                    // Its stay on this node ends now.
                    let s = self.settle(&displaced, cluster.node(location), t, metrics);
                    if K::ENABLED {
                        if let Some(s) = s {
                            ev.push(released(
                                ReleaseCause::Displaced,
                                location,
                                &displaced,
                                t,
                                s,
                            ));
                        }
                    }
                    // Restart the remaining keep-alive on the first
                    // transfer target with room. The move is priced:
                    // egress grams at the *source* grid's intensity now,
                    // latency carried by the container until its next
                    // service (both zero under `TransferCost::free()` —
                    // charged only when a target accepts).
                    displaced.warm_since_ms = t;
                    if displaced.expiry_ms > t {
                        let egress_g = self
                            .config
                            .transfer_cost
                            .grams(displaced.memory_mib, self.ci.at(location, t));
                        displaced.transfer_latency_ms += self.config.transfer_cost.latency_ms;
                        let mut pending = Some(displaced);
                        for &target in &targets {
                            let probe = pending.take().expect("unplaced container");
                            match cluster.pool_mut(target).insert(probe) {
                                Ok(replaced) => {
                                    self.accept_transfer::<K>(
                                        replaced, func.0, location, target, t, egress_g, 0,
                                        cluster, metrics, ev,
                                    );
                                    break;
                                }
                                Err(c) => pending = Some(c),
                            }
                        }
                        // Fault-blocked candidates get the bounded
                        // deterministic retry: probe them at the
                        // virtual instants `t + Σ backoff` (a pure
                        // function of the invocation index and the
                        // attempt, so any shard/thread layout replays
                        // the schedule bit-identically). A probe that
                        // finds its target reachable — the partition
                        // healed, the node recovered — and with room
                        // places the container; the waited backoff is
                        // charged as transfer latency.
                        if pending.is_some() && !blocked.is_empty() {
                            let seq = ev.index as u64;
                            let mut waited = 0u64;
                            'retry: for attempt in 1..=self.faults.retry().max_attempts {
                                let backoff = self.faults.backoff_ms(seq, attempt);
                                waited += backoff;
                                let t_probe = t + waited;
                                metrics.transfer_retries += 1;
                                if K::ENABLED {
                                    ev.push(Event::TransferRetried {
                                        func: func.0,
                                        node: location.0,
                                        t_ms: t,
                                        attempt,
                                        backoff_ms: backoff,
                                    });
                                }
                                for &target in &blocked {
                                    if !self.reachable(location, target, t_probe) {
                                        continue;
                                    }
                                    let probe = pending.take().expect("unplaced container");
                                    match cluster.pool_mut(target).insert(probe) {
                                        Ok(replaced) => {
                                            self.accept_transfer::<K>(
                                                replaced, func.0, location, target, t, egress_g,
                                                waited, cluster, metrics, ev,
                                            );
                                            break 'retry;
                                        }
                                        Err(c) => pending = Some(c),
                                    }
                                }
                            }
                        }
                        if pending.is_some() {
                            metrics.evicted_functions += 1;
                        }
                    } else {
                        metrics.evicted_functions += 1;
                    }
                }
                if plan.place_incoming {
                    if cluster.pool_mut(location).insert(container).is_err() {
                        metrics.evicted_functions += 1;
                    }
                } else {
                    metrics.evicted_functions += 1;
                }
            }
        }
    }

    /// Book one accepted keep-alive transfer `location → target`: settle
    /// a replaced resident of the target (the stay it cut short must
    /// still be charged), count the egress and latency, emit the events.
    /// `waited_ms` is retry backoff served before the move — zero on the
    /// direct path, which keeps it byte-identical to the pre-fault
    /// engine.
    #[allow(clippy::too_many_arguments)]
    fn accept_transfer<K: EventSink>(
        &self,
        replaced: Option<WarmContainer>,
        func: u32,
        location: NodeId,
        target: NodeId,
        t: u64,
        egress_g: f64,
        waited_ms: u64,
        cluster: &Cluster,
        metrics: &mut RunMetrics,
        ev: &mut StepEvents<'_>,
    ) {
        if let Some(old) = replaced {
            let s = self.settle(&old, cluster.node(target), t, metrics);
            if K::ENABLED {
                if let Some(s) = s {
                    ev.push(released(ReleaseCause::Replaced, target, &old, t, s));
                }
            }
        }
        let latency_ms = self.config.transfer_cost.latency_ms + waited_ms;
        metrics.transfers += 1;
        metrics.transfer_g += egress_g;
        metrics.transfer_g_by_node[location.index()] += egress_g;
        metrics.transfer_ms += latency_ms;
        if K::ENABLED {
            ev.push(Event::Transferred {
                func,
                from: location.0,
                to: target.0,
                t_ms: t,
                egress_g,
                latency_ms,
            });
        }
    }

    /// Advance the fleet timeline to `t_limit` (inclusive): apply every
    /// due membership event and re-placement pass in time order, ties
    /// resolved membership-first (matching the stream's lane order).
    /// With the default config (no passes, empty plan) this returns
    /// immediately — the pre-pricing engine, bit for bit.
    fn catch_up<K: EventSink>(
        &self,
        tl: &mut FleetTimeline,
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
        events: &mut EventList,
        t_limit: u64,
    ) {
        let every_ms = self
            .config
            .replacement_every_min
            .saturating_mul(crate::MINUTE_MS);
        loop {
            let t_pass = if every_ms == 0 {
                u64::MAX
            } else {
                tl.next_pass.saturating_mul(every_ms)
            };
            let t_member = self
                .membership
                .events()
                .get(tl.next_member)
                .map(|e| e.t_ms)
                .unwrap_or(u64::MAX);
            let t_fault = self
                .faults
                .crash_changes()
                .get(tl.next_fault)
                .map(|&(t, _, _)| t)
                .unwrap_or(u64::MAX);
            let t_next = t_pass.min(t_member).min(t_fault);
            if t_next > t_limit || t_next == u64::MAX {
                return;
            }
            // Tie order membership → crash → pass matches the stream's
            // lane order (MEMBER_OUT < CRASH_OUT < REPLACE_OUT), so the
            // applied state transitions read in the emitted order.
            if t_member <= t_next {
                let idx = tl.next_member;
                let e = self.membership.events()[idx];
                self.apply_membership::<K>(idx, e, cluster, metrics, events);
                tl.next_member += 1;
            } else if t_fault <= t_pass {
                let (t, node, idx) = self.faults.crash_changes()[tl.next_fault];
                self.apply_crash::<K>(idx, t, node, cluster, metrics, events);
                tl.next_fault += 1;
            } else {
                self.replacement_pass::<K>(tl.next_pass, t_pass, cluster, metrics, events);
                tl.next_pass += 1;
            }
        }
    }

    /// Migration targets from `exclude`, cleanest grid first: every
    /// *active* other node ranked by the cost-model's reference
    /// keep-alive phase (1 GiB for one minute) at its region's CI *now*,
    /// ties toward the lower node id — the same reference quantity the
    /// scheduler-side transfer ranking uses, so engine drains and policy
    /// rankings agree on what "cleaner" means.
    fn migration_ranking(&self, exclude: NodeId, cluster: &Cluster, t: u64) -> Vec<NodeId> {
        let mut ranked: Vec<(f64, NodeId)> = self
            .fleet
            .ids()
            .filter(|&id| id != exclude && cluster.is_active(id))
            .filter(|&id| self.reachable(exclude, id, t))
            .map(|id| {
                let g = self
                    .config
                    .carbon_model
                    .keepalive_phase(
                        self.fleet.node(id),
                        1024,
                        crate::MINUTE_MS,
                        self.ci.at(id, t),
                    )
                    .total_g();
                (g, id)
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("CI-derived grams are never NaN")
                .then_with(|| a.1.cmp(&b.1))
        });
        ranked.into_iter().map(|(_, id)| id).collect()
    }

    /// Can a transfer leave `from` for `target` at `t`? Always under an
    /// empty fault plan; with faults, the target must be up and on the
    /// same side of every active partition.
    #[inline]
    fn reachable(&self, from: NodeId, target: NodeId, t: u64) -> bool {
        self.faults.is_empty()
            || (!self.faults.is_crashed(target, t)
                && self
                    .faults
                    .link_ok(self.ci.region(from), self.ci.region(target), t))
    }

    /// Apply crash fault `fault_idx` at `t`: canonical expiry sweep
    /// first (a container lapsed by `t` dies as an expiry, never as a
    /// crash loss), then settle and drop every resident of `node`'s warm
    /// pool — the memory is counted in
    /// [`RunMetrics::lost_warm_mib`](crate::RunMetrics) and *nothing*
    /// transfers out; an ungraceful crash gives no time to migrate —
    /// and clear the node's bounded executor (occupied slots and queued
    /// waiters vanish). Recovery needs no twin: the plan's pure
    /// [`FaultPlan::is_crashed`] query simply stops matching, and the
    /// node accepts placements again.
    fn apply_crash<K: EventSink>(
        &self,
        fault_idx: u32,
        t: u64,
        node: NodeId,
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
        events: &mut EventList,
    ) {
        let node_ids: Vec<NodeId> = self.fleet.ids().collect();
        for &id in &node_ids {
            let expired = cluster.pool_mut(id).expire_until(t);
            for c in expired {
                let s = self.settle(&c, self.fleet.node(id), c.expiry_ms, metrics);
                if K::ENABLED {
                    events.push(self.expired_event(id, &c, s));
                }
            }
        }
        let pos = if K::ENABLED { self.trigger_pos(t) } else { 0 };
        let mut residents: Vec<WarmContainer> = cluster.pool(node).iter().copied().collect();
        residents.sort_by_key(|c| c.func.0);
        for probe in residents {
            let c = cluster
                .pool_mut(node)
                .remove(probe.func)
                .expect("resident listed from the pool");
            let s = self.settle(&c, self.fleet.node(node), t, metrics);
            metrics.lost_warm_mib += c.memory_mib;
            if K::ENABLED {
                if let Some(s) = s {
                    events.push((
                        EventKey::new(pos, lane::CRASH_OUT, fault_idx, c.func.0),
                        released(ReleaseCause::Crashed, node, &c, t, s),
                    ));
                }
            }
        }
        if let Some(x) = cluster.executors_mut() {
            x.reset(node);
        }
    }

    /// Apply membership event `m_idx`: a join re-activates the node; a
    /// leave drains its warm pool through the priced migration ranking
    /// (settle the stay, pay egress at the *leaving* grid, restart on
    /// the cleanest active node with room — else evict) and deactivates
    /// it. Containers never stack: a target already holding the function
    /// is skipped, so drain events collide with nothing.
    fn apply_membership<K: EventSink>(
        &self,
        m_idx: usize,
        e: MembershipEvent,
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
        events: &mut EventList,
    ) {
        // Canonical expiry sweep first: anything lapsed by `t` dies as an
        // expiry (its canonical anchor), never as a drain.
        let node_ids: Vec<NodeId> = self.fleet.ids().collect();
        for &id in &node_ids {
            let expired = cluster.pool_mut(id).expire_until(e.t_ms);
            for c in expired {
                let s = self.settle(&c, self.fleet.node(id), c.expiry_ms, metrics);
                if K::ENABLED {
                    events.push(self.expired_event(id, &c, s));
                }
            }
        }
        if e.join {
            cluster.set_active(e.node, true);
            return;
        }
        cluster.set_active(e.node, false);
        // A leave targeting a node that is down at this instant must not
        // drain: the crash already settled and dropped the pool (ties at
        // the crash instant apply membership first, and the guard makes
        // the loss accounting land on the crash either way — counted
        // once, in `lost_warm_mib`, never doubled as a priced drain).
        if self.faults.is_crashed(e.node, e.t_ms) {
            return;
        }
        let pos = if K::ENABLED {
            self.trigger_pos(e.t_ms)
        } else {
            0
        };
        let ranking = self.migration_ranking(e.node, cluster, e.t_ms);
        let mut residents: Vec<WarmContainer> = cluster.pool(e.node).iter().copied().collect();
        residents.sort_by_key(|c| c.func.0);
        for c in residents {
            let mut c = cluster
                .pool_mut(e.node)
                .remove(c.func)
                .expect("resident listed from the pool");
            let s = self.settle(&c, self.fleet.node(e.node), e.t_ms, metrics);
            if K::ENABLED {
                if let Some(s) = s {
                    events.push((
                        EventKey::new(pos, lane::MEMBER_OUT, m_idx as u32, c.func.0),
                        released(ReleaseCause::Displaced, e.node, &c, e.t_ms, s),
                    ));
                }
            }
            c.warm_since_ms = c.warm_since_ms.max(e.t_ms);
            let egress_g = self
                .config
                .transfer_cost
                .grams(c.memory_mib, self.ci.at(e.node, e.t_ms));
            c.transfer_latency_ms += self.config.transfer_cost.latency_ms;
            let mut placed = false;
            for &target in &ranking {
                if cluster.pool(target).get(c.func).is_some() || !cluster.pool(target).fits(&c) {
                    continue;
                }
                let func = c.func.0;
                cluster
                    .pool_mut(target)
                    .insert(c)
                    .expect("fits-checked insert cannot reject");
                metrics.transfers += 1;
                metrics.transfer_g += egress_g;
                metrics.transfer_g_by_node[e.node.index()] += egress_g;
                metrics.transfer_ms += self.config.transfer_cost.latency_ms;
                if K::ENABLED {
                    events.push((
                        EventKey::new(pos, lane::MEMBER_IN, m_idx as u32, func),
                        Event::Transferred {
                            func,
                            from: e.node.0,
                            to: target.0,
                            t_ms: e.t_ms,
                            egress_g,
                            latency_ms: self.config.transfer_cost.latency_ms,
                        },
                    ));
                }
                placed = true;
                break;
            }
            if !placed {
                metrics.evicted_functions += 1;
            }
        }
    }

    /// Re-placement pass `k` at `tm`: follow the sun. For every active
    /// node's long-lived residents (warm *before* `tm` — this pass's own
    /// migrants and not-yet-warm keep-alives are excluded), migrate to
    /// the first cleaner node where the remaining keep-alive **plus the
    /// egress price** beats staying put. Pure in `(tm, cluster state)`,
    /// so every shard replays it identically.
    fn replacement_pass<K: EventSink>(
        &self,
        k: u64,
        tm: u64,
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
        events: &mut EventList,
    ) {
        let node_ids: Vec<NodeId> = self.fleet.ids().collect();
        for &id in &node_ids {
            let expired = cluster.pool_mut(id).expire_until(tm);
            for c in expired {
                let s = self.settle(&c, self.fleet.node(id), c.expiry_ms, metrics);
                if K::ENABLED {
                    events.push(self.expired_event(id, &c, s));
                }
            }
        }
        let pos = if K::ENABLED { self.trigger_pos(tm) } else { 0 };
        for &src in &node_ids {
            if !cluster.is_active(src) || cluster.pool(src).is_empty() {
                continue;
            }
            let ranking = self.migration_ranking(src, cluster, tm);
            if ranking.is_empty() {
                continue;
            }
            let src_ci = self.ci.at(src, tm);
            let mut residents: Vec<WarmContainer> = cluster
                .pool(src)
                .iter()
                .filter(|c| c.warm_since_ms < tm)
                .copied()
                .collect();
            residents.sort_by_key(|c| c.func.0);
            for probe in residents {
                let dur = probe.expiry_ms - tm;
                let stay_g = self
                    .config
                    .carbon_model
                    .keepalive_phase(self.fleet.node(src), probe.memory_mib, dur, src_ci)
                    .total_g();
                let egress_g = self.config.transfer_cost.grams(probe.memory_mib, src_ci);
                for &target in &ranking {
                    let move_g = self
                        .config
                        .carbon_model
                        .keepalive_phase(
                            self.fleet.node(target),
                            probe.memory_mib,
                            dur,
                            self.ci.at(target, tm),
                        )
                        .total_g()
                        + egress_g;
                    if move_g >= stay_g {
                        continue;
                    }
                    if cluster.pool(target).get(probe.func).is_some()
                        || !cluster.pool(target).fits(&probe)
                    {
                        continue;
                    }
                    let mut c = cluster
                        .pool_mut(src)
                        .remove(probe.func)
                        .expect("resident listed from the pool");
                    let s = self.settle(&c, self.fleet.node(src), tm, metrics);
                    if K::ENABLED {
                        if let Some(s) = s {
                            events.push((
                                EventKey::new(
                                    pos,
                                    lane::REPLACE_OUT,
                                    c.func.0,
                                    (k as u32) << 16 | src.0,
                                ),
                                released(ReleaseCause::Displaced, src, &c, tm, s),
                            ));
                        }
                    }
                    c.warm_since_ms = tm;
                    c.transfer_latency_ms += self.config.transfer_cost.latency_ms;
                    let func = c.func.0;
                    cluster
                        .pool_mut(target)
                        .insert(c)
                        .expect("fits-checked insert cannot reject");
                    metrics.transfers += 1;
                    metrics.transfer_g += egress_g;
                    metrics.transfer_g_by_node[src.index()] += egress_g;
                    metrics.transfer_ms += self.config.transfer_cost.latency_ms;
                    if K::ENABLED {
                        events.push((
                            EventKey::new(pos, lane::REPLACE_IN, func, (k as u32) << 16 | src.0),
                            Event::Transferred {
                                func,
                                from: src.0,
                                to: target.0,
                                t_ms: tm,
                                egress_g,
                                latency_ms: self.config.transfer_cost.latency_ms,
                            },
                        ));
                    }
                    break;
                }
            }
        }
    }

    /// Charge a container's keep-alive period `[warm_since, end)` to its
    /// origin record. Returns what was charged (for the event stream), or
    /// `None` when the stay had zero duration and nothing was charged.
    fn settle(
        &self,
        container: &WarmContainer,
        node: &HardwareNode,
        end_ms: u64,
        metrics: &mut RunMetrics,
    ) -> Option<Settlement> {
        let duration = container.resident_ms(end_ms);
        if duration == 0 {
            return None;
        }
        // Charged on the *hosting node's* grid.
        let ci_avg = self.ci.average_over(
            node.id,
            container.warm_since_ms,
            container.warm_since_ms + duration,
        );
        let fp =
            self.config
                .carbon_model
                .keepalive_phase(node, container.memory_mib, duration, ci_avg);
        metrics.keepalive_g_by_node[node.id.index()] += fp.total_g();
        let energy =
            self.config
                .carbon_model
                .keepalive_energy_kwh(node, container.memory_mib, duration);
        let rec = &mut metrics.records[container.origin_record];
        rec.keepalive_carbon += fp;
        rec.energy_kwh += energy;
        Some(Settlement {
            keepalive_g: fp.total_g(),
            energy_kwh: energy,
        })
    }

    /// The canonical stream position for an engine action triggered at
    /// `t_ms`: the index of the first invocation at or after it. This is
    /// exactly where the sequential engine's lazy sweep observes an
    /// expiry, so shards can anchor the same action at the same place
    /// without replaying the sequential schedule.
    fn trigger_pos(&self, t_ms: u64) -> u64 {
        self.trace
            .invocations()
            .partition_point(|inv| inv.t_ms < t_ms) as u64
    }

    /// An [`Event::Expired`] at its canonical key. Works for mid-run
    /// sweeps, period-boundary sweeps, and the end-of-run drain alike:
    /// the key depends only on the expiry instant, never on which path
    /// happened to collect the container.
    fn expired_event(
        &self,
        id: NodeId,
        c: &WarmContainer,
        s: Option<Settlement>,
    ) -> (EventKey, Event) {
        let s = s.unwrap_or_default();
        (
            EventKey::new(self.trigger_pos(c.expiry_ms), lane::EXPIRY, id.0, c.func.0),
            Event::Expired {
                node: id.0,
                func: c.func.0,
                since_ms: c.warm_since_ms,
                expiry_ms: c.expiry_ms,
                keepalive_g: s.keepalive_g,
                energy_kwh: s.energy_kwh,
            },
        )
    }

    /// Events derivable from inputs alone — run start, period boundaries,
    /// per-region CI observations. Both engine paths derive these from
    /// the global trace, so they are identical by construction
    /// (telemetry periods are the trace's *active minutes*, independent
    /// of [`ShardOptions::period_ms`]).
    fn skeleton_events(&self) -> EventList {
        let mut events: EventList = Vec::new();
        events.push((
            EventKey::new(0, lane::RUN_STARTED, 0, 0),
            Event::RunStarted {
                invocations: self.trace.len() as u64,
                functions: self.trace.catalog().len() as u64,
                nodes: self.fleet.len() as u64,
                horizon_ms: if self.trace.is_empty() {
                    0
                } else {
                    self.trace.horizon_ms()
                },
            },
        ));
        let regions: Vec<(String, &CarbonIntensityTrace)> = self
            .ci
            .distinct_regions()
            .map(|(r, tr)| (r.label().to_string(), tr))
            .collect();
        let mut open: Option<u64> = None;
        for (i, inv) in self.trace.invocations().iter().enumerate() {
            let minute = inv.t_ms / crate::MINUTE_MS;
            if open == Some(minute) {
                continue;
            }
            let i = i as u64;
            if let Some(prev) = open {
                events.push((
                    EventKey::new(i, lane::PERIOD_ENDED, 0, 0),
                    Event::PeriodEnded { minute: prev },
                ));
            }
            events.push((
                EventKey::new(i, lane::PERIOD_STARTED, 0, 0),
                Event::PeriodStarted { minute },
            ));
            let t_ms = minute * crate::MINUTE_MS;
            for (ri, (label, series)) in regions.iter().enumerate() {
                events.push((
                    EventKey::new(i, lane::CI_OBSERVED, ri as u32, 0),
                    Event::CiObserved {
                        region: label.clone(),
                        t_ms,
                        gco2_per_kwh: series.at(t_ms),
                    },
                ));
            }
            open = Some(minute);
        }
        if let Some(prev) = open {
            events.push((
                EventKey::new(self.trace.len() as u64, lane::PERIOD_ENDED, 0, 0),
                Event::PeriodEnded { minute: prev },
            ));
        }
        // Membership changes are input-derived too (the plan is fixed
        // before the run), so the coordinator emits them exactly once —
        // every shard *applies* the timeline, none narrates it. Events
        // past the horizon never fire and are not emitted.
        let horizon = if self.trace.is_empty() {
            0
        } else {
            self.trace.horizon_ms()
        };
        for (m_idx, e) in self.membership.events().iter().enumerate() {
            if e.t_ms > horizon {
                break;
            }
            events.push((
                EventKey::new(self.trigger_pos(e.t_ms), lane::MEMBERSHIP, m_idx as u32, 0),
                Event::MembershipChanged {
                    node: e.node.0,
                    t_ms: e.t_ms,
                    joined: e.join,
                },
            ));
        }
        // Fault onsets and clearances are input-derived too: the plan is
        // fixed before the run, so the coordinator narrates it once —
        // shards *apply* the crash drains but never emit these markers.
        // Onsets past the horizon never take effect and are not emitted;
        // a clearance past the horizon is likewise withheld (the run
        // ends with the fault still active).
        for (idx, fault) in self.faults.faults().iter().enumerate() {
            let idx = idx as u32;
            match fault {
                Fault::NodeCrash {
                    node,
                    at_ms,
                    recover_at_ms,
                } => {
                    if *at_ms > horizon {
                        continue;
                    }
                    events.push((
                        EventKey::new(self.trigger_pos(*at_ms), lane::CRASH, idx, 0),
                        Event::NodeCrashed {
                            node: node.0,
                            t_ms: *at_ms,
                            recover_ms: *recover_at_ms,
                        },
                    ));
                    if *recover_at_ms <= horizon {
                        events.push((
                            EventKey::new(self.trigger_pos(*recover_at_ms), lane::CRASH, idx, 1),
                            Event::NodeRecovered {
                                node: node.0,
                                t_ms: *recover_at_ms,
                            },
                        ));
                    }
                }
                Fault::CiOutage {
                    region,
                    from_ms,
                    to_ms,
                } => {
                    if *from_ms > horizon {
                        continue;
                    }
                    events.push((
                        EventKey::new(self.trigger_pos(*from_ms), lane::CI_HEALTH, idx, 0),
                        Event::CiStale {
                            region: region.label().to_string(),
                            t_ms: *from_ms,
                            until_ms: *to_ms,
                        },
                    ));
                    if *to_ms <= horizon {
                        events.push((
                            EventKey::new(self.trigger_pos(*to_ms), lane::CI_HEALTH, idx, 1),
                            Event::CiRestored {
                                region: region.label().to_string(),
                                t_ms: *to_ms,
                            },
                        ));
                    }
                }
                Fault::Partition {
                    regions,
                    from_ms,
                    to_ms,
                } => {
                    if *from_ms > horizon {
                        continue;
                    }
                    let sides = regions
                        .iter()
                        .map(|r| r.label())
                        .collect::<Vec<_>>()
                        .join(",");
                    events.push((
                        EventKey::new(self.trigger_pos(*from_ms), lane::PARTITION, idx, 0),
                        Event::PartitionStarted {
                            regions: sides.clone(),
                            t_ms: *from_ms,
                            until_ms: *to_ms,
                        },
                    ));
                    if *to_ms <= horizon {
                        events.push((
                            EventKey::new(self.trigger_pos(*to_ms), lane::PARTITION, idx, 1),
                            Event::PartitionHealed {
                                regions: sides,
                                t_ms: *to_ms,
                            },
                        ));
                    }
                }
            }
        }
        events
    }

    /// Merge the run body with the input-derived skeleton, cap with
    /// [`Event::RunEnded`], and hand the whole collection to
    /// [`finalize`] for sorting, numbering, hash-chaining, and emission.
    fn finish_stream<K: EventSink>(&self, body: EventList, metrics: &RunMetrics, sink: &mut K) {
        let mut stream = self.skeleton_events();
        stream.extend(body);
        stream.push((
            EventKey::new(self.trace.len() as u64, lane::RUN_ENDED, 0, 0),
            Event::RunEnded {
                invocations: metrics.invocations() as u64,
                transfers: metrics.transfers,
                evictions: metrics.evicted_functions,
                revocations: metrics.reconcile_revocations,
                expired: metrics.expiry.expired,
            },
        ));
        finalize(stream, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AdjustPlan, Decision, KeepAliveChoice};
    use crate::MINUTE_MS;
    use ecolife_hw::{skus, Generation};
    use ecolife_trace::{FunctionId, FunctionProfile, Invocation, WorkloadCatalog};

    /// Fixed policy: execute on `exec`, keep alive `ka_min` minutes on
    /// `ka_loc`.
    struct Fixed {
        exec: NodeId,
        ka_loc: NodeId,
        ka_min: u64,
        overflow: OverflowAction,
    }

    impl Fixed {
        fn new(exec: impl Into<NodeId>, ka_loc: impl Into<NodeId>, ka_min: u64) -> Self {
            Fixed {
                exec: exec.into(),
                ka_loc: ka_loc.into(),
                ka_min,
                overflow: OverflowAction::Drop,
            }
        }
    }

    impl Scheduler for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &InvocationCtx<'_>) -> Decision {
            Decision {
                exec: self.exec,
                keepalive: (self.ka_min > 0).then_some(KeepAliveChoice {
                    location: self.ka_loc,
                    duration_ms: self.ka_min * MINUTE_MS,
                }),
            }
        }
        fn on_pool_overflow(&mut self, _ctx: &OverflowCtx<'_>) -> OverflowAction {
            self.overflow.clone()
        }
    }

    fn one_func_catalog() -> WorkloadCatalog {
        WorkloadCatalog::new(vec![FunctionProfile::new("f", 1_000, 2_000, 512, 0.64)])
    }

    fn trace_of(times: &[u64]) -> Trace {
        Trace::new(
            one_func_catalog(),
            times
                .iter()
                .map(|&t| Invocation {
                    func: FunctionId(0),
                    t_ms: t,
                })
                .collect(),
        )
    }

    fn ci300() -> CarbonIntensityTrace {
        CarbonIntensityTrace::constant(300.0, 600)
    }

    #[test]
    fn first_invocation_is_cold_second_is_warm_within_keepalive() {
        let trace = trace_of(&[0, 2 * MINUTE_MS]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::New, 10));
        assert_eq!(m.invocations(), 2);
        assert!(!m.records[0].warm);
        assert!(m.records[1].warm);
        // Warm service = exec only + setup; cold includes the cold start.
        assert!(m.records[1].service_ms < m.records[0].service_ms);
        assert_eq!(m.records[1].service_ms, 1_000 + 50);
        assert_eq!(m.records[0].service_ms, 2_000 + 1_000 + 50);
    }

    #[test]
    fn reinvocation_after_expiry_is_cold() {
        let trace = trace_of(&[0, 15 * MINUTE_MS]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::New, 10));
        assert!(!m.records[1].warm);
        assert_eq!(m.warm_starts(), 0);
    }

    #[test]
    fn keepalive_carbon_attributed_to_scheduling_invocation() {
        let trace = trace_of(&[0]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::New, 10));
        // The sole record carries its own 10-minute keep-alive.
        assert!(m.records[0].keepalive_carbon.total_g() > 0.0);
        // Order of magnitude: ~2 W for 600 s at 300 g/kWh ≈ 0.1 g plus
        // embodied.
        let ka = m.records[0].keepalive_carbon.total_g();
        assert!((0.02..1.0).contains(&ka), "keep-alive carbon {ka}");
    }

    #[test]
    fn warm_reuse_truncates_keepalive_charge() {
        let ci = ci300();
        let fleet = skus::fleet_a();
        // Reuse after 2 of 10 scheduled minutes…
        let t_short = trace_of(&[0, 2 * MINUTE_MS]);
        let m_short = Simulation::new(&t_short, &ci, fleet.clone()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        // …must charge less than lapsing the full 10 minutes.
        let t_lapse = trace_of(&[0]);
        let m_lapse = Simulation::new(&t_lapse, &ci, fleet).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        let short_ka = m_short.records[0].keepalive_carbon.total_g();
        let lapse_ka = m_lapse.records[0].keepalive_carbon.total_g();
        assert!(short_ka < 0.5 * lapse_ka, "{short_ka} vs {lapse_ka}");
    }

    #[test]
    fn warm_location_overrides_exec_decision() {
        // Keep alive on node 0 but the policy wants to execute on node 1:
        // the engine must execute the warm start on node 0 (Sec. IV-D).
        let trace = trace_of(&[0, MINUTE_MS]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::Old, 10));
        assert_eq!(m.records[1].exec_location, NodeId(0));
        assert!(m.records[1].warm);
    }

    #[test]
    fn execution_on_old_is_slower() {
        let trace = trace_of(&[0]);
        let ci = ci300();
        let fleet = skus::fleet_a();
        let m_old = Simulation::new(&trace, &ci, fleet.clone()).run(&mut Fixed::new(
            NodeId(0),
            NodeId(0),
            0,
        ));
        let m_new =
            Simulation::new(&trace, &ci, fleet).run(&mut Fixed::new(NodeId(1), NodeId(1), 0));
        assert!(m_old.records[0].service_ms > m_new.records[0].service_ms);
    }

    #[test]
    fn overflow_drop_counts_eviction() {
        // Pool too small for the 512-MiB container.
        let pair = skus::pair_a().with_keepalive_budgets_mib(256, 256);
        let trace = trace_of(&[0]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, pair).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        assert_eq!(m.evicted_functions, 1);
        assert_eq!(m.records[0].keepalive_carbon.total_g(), 0.0);
    }

    /// Displace whatever is resident; place the incoming.
    struct Adjusting {
        transfer_targets: Option<Vec<NodeId>>,
    }
    impl Scheduler for Adjusting {
        fn name(&self) -> &'static str {
            "adjusting"
        }
        fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
            let newest = ctx.cluster.fleet().newest();
            Decision {
                exec: newest,
                keepalive: Some(KeepAliveChoice {
                    location: newest,
                    duration_ms: 10 * MINUTE_MS,
                }),
            }
        }
        fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
            let resident: Vec<_> = ctx
                .cluster
                .pool(ctx.location)
                .iter()
                .map(|c| c.func)
                .collect();
            OverflowAction::Adjust(AdjustPlan {
                displace: resident,
                place_incoming: true,
                transfer_targets: self.transfer_targets.clone(),
            })
        }
    }

    fn two_func_trace() -> Trace {
        let catalog = WorkloadCatalog::new(vec![
            FunctionProfile::new("a", 1_000, 2_000, 512, 0.5),
            FunctionProfile::new("b", 1_000, 2_000, 512, 0.5),
        ]);
        Trace::new(
            catalog,
            vec![
                Invocation {
                    func: FunctionId(0),
                    t_ms: 0,
                },
                Invocation {
                    func: FunctionId(1),
                    t_ms: 10_000,
                },
            ],
        )
    }

    #[test]
    fn overflow_adjust_transfers_to_other_pool() {
        // Two functions of 512 MiB each; the new pool only fits one.
        let trace = two_func_trace();
        let ci = ci300();
        let pair = skus::pair_a().with_keepalive_budgets_mib(512, 512);

        let m = Simulation::new(&trace, &ci, pair).run(&mut Adjusting {
            transfer_targets: None,
        });
        assert_eq!(m.transfers, 1);
        assert_eq!(m.evicted_functions, 0);
        // Both invocations still carry keep-alive carbon: one on new, the
        // transferred one split across nodes.
        assert!(m.records[0].keepalive_carbon.total_g() > 0.0);
        assert!(m.records[1].keepalive_carbon.total_g() > 0.0);
    }

    #[test]
    fn transfer_targets_are_tried_in_plan_order() {
        // Three nodes; the newest (node 2) pool fits one container. An
        // explicit ranking steers the displaced container to node 1 even
        // though default id order would pick node 0.
        let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(512);
        let trace = two_func_trace();
        let ci = ci300();

        let m = Simulation::new(&trace, &ci, fleet.clone()).run(&mut Adjusting {
            transfer_targets: Some(vec![NodeId(1), NodeId(0)]),
        });
        assert_eq!(m.transfers, 1);
        assert_eq!(m.evicted_functions, 0);

        // Default order: node 0 receives the displaced container instead.
        let m_default = Simulation::new(&trace, &ci, fleet).run(&mut Adjusting {
            transfer_targets: None,
        });
        assert_eq!(m_default.transfers, 1);
        // Both runs keep both functions warm; the placement differs, so
        // the displaced container's keep-alive carbon differs (node 0 is
        // the cheaper, older node).
        assert!(
            m.records[0].keepalive_carbon.total_g()
                > m_default.records[0].keepalive_carbon.total_g()
        );
    }

    /// Replays a fixed decision per invocation index; overflows displace
    /// function 0 and place the incoming container.
    struct Scripted {
        decisions: Vec<Decision>,
    }
    impl Scheduler for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
            self.decisions[ctx.index]
        }
        fn on_pool_overflow(&mut self, _ctx: &OverflowCtx<'_>) -> OverflowAction {
            OverflowAction::Adjust(AdjustPlan {
                displace: vec![FunctionId(0)],
                place_incoming: true,
                transfer_targets: None,
            })
        }
    }

    #[test]
    fn transfer_settles_a_replaced_container_on_the_target() {
        // Function F ends up resident in BOTH pools: its first keep-alive
        // goes to the new node, and a re-invocation arriving during that
        // first service period (container not yet warm → cold start)
        // schedules a second keep-alive on the old node. When a later
        // overflow displaces F from the old pool into the new pool, the
        // insert replaces F's original container there — whose accrued
        // keep-alive time must still be charged to its origin record.
        let catalog = WorkloadCatalog::new(vec![
            FunctionProfile::new("f", 1_000, 2_000, 512, 0.64),
            FunctionProfile::new("g", 1_000, 2_000, 512, 0.64),
        ]);
        let f = FunctionId(0);
        let g = FunctionId(1);
        let trace = Trace::new(
            catalog,
            vec![
                Invocation { func: f, t_ms: 0 },
                Invocation {
                    func: f,
                    t_ms: 1_000,
                },
                Invocation {
                    func: g,
                    t_ms: 20_000,
                },
            ],
        );
        let ci = ci300();
        let pair = skus::pair_a().with_keepalive_budgets_mib(512, 512);
        let ka = |node: NodeId| {
            Some(KeepAliveChoice {
                location: node,
                duration_ms: 10 * MINUTE_MS,
            })
        };
        let m = Simulation::new(&trace, &ci, pair).run(&mut Scripted {
            decisions: vec![
                Decision {
                    exec: NodeId(1),
                    keepalive: ka(NodeId(1)),
                },
                Decision {
                    exec: NodeId(0),
                    keepalive: ka(NodeId(0)),
                },
                Decision {
                    exec: NodeId(1),
                    keepalive: ka(NodeId(0)),
                },
            ],
        });
        // The overflow displaced F from the old pool into the new pool.
        assert_eq!(m.transfers, 1);
        assert_eq!(m.evicted_functions, 0);
        // Record 0's container on the new node sat warm from the end of
        // its service until it was replaced by the transfer at t = 20 s —
        // that stay must be charged, not silently dropped.
        assert!(
            m.records[0].keepalive_carbon.total_g() > 0.0,
            "replaced container's keep-alive was never settled"
        );
        // The displaced container's old-node stay is charged to record 1.
        assert!(m.records[1].keepalive_carbon.total_g() > 0.0);
    }

    #[test]
    fn full_fleet_evicts_displaced_containers() {
        // Every pool fits exactly one 512-MiB container and all are kept
        // full by the overflowing node's own traffic — a displaced
        // container has nowhere to go.
        let trace = two_func_trace();
        let ci = ci300();
        let pair = skus::pair_a().with_keepalive_budgets_mib(256, 512);
        let m = Simulation::new(&trace, &ci, pair).run(&mut Adjusting {
            transfer_targets: None,
        });
        // The displaced container does not fit the 256-MiB old pool.
        assert_eq!(m.transfers, 0);
        assert_eq!(m.evicted_functions, 1);
    }

    #[test]
    fn no_keepalive_means_no_keepalive_carbon() {
        let trace = trace_of(&[0, MINUTE_MS]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            0,
        ));
        assert_eq!(m.total_keepalive_carbon_g(), 0.0);
        assert_eq!(m.warm_starts(), 0);
    }

    #[test]
    fn energy_accumulates_service_and_keepalive() {
        let trace = trace_of(&[0]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        let service_only = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            0,
        ));
        assert!(m.total_energy_kwh() > service_only.total_energy_kwh());
    }

    #[test]
    fn evaluate_matches_simulation_run() {
        let trace = trace_of(&[0, 2 * MINUTE_MS]);
        let ci = ci300();
        let via_sim = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        let via_eval = evaluate(
            &trace,
            &ci,
            skus::pair_a(),
            &mut Fixed::new(Generation::New, Generation::New, 10),
        );
        assert_eq!(via_sim.records, via_eval.records);
        assert_eq!(via_sim.keepalive_g_by_node, via_eval.keepalive_g_by_node);
    }

    #[test]
    fn per_node_keepalive_follows_the_hosting_pool() {
        // Keep-alive scheduled on node 0 while execution runs on node 1:
        // the hosting node, not the exec node, carries the grams.
        let trace = trace_of(&[0]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::Old,
            10,
        ));
        assert_eq!(m.keepalive_g_by_node.len(), 2);
        assert!(m.keepalive_g_by_node[0] > 0.0);
        assert_eq!(m.keepalive_g_by_node[1], 0.0);
        let total_ka: f64 = m.keepalive_g_by_node.iter().sum();
        assert!((total_ka - m.total_keepalive_carbon_g()).abs() < 1e-9);
        // And the per-node totals add up to the run total.
        let by_node = m.carbon_g_by_node();
        assert!((by_node.iter().sum::<f64>() - m.total_carbon_g()).abs() < 1e-9);
        // Execution happened on node 1, so its service carbon sits there.
        assert!(by_node[1] > 0.0);
    }

    #[test]
    fn deterministic_run() {
        let trace = trace_of(&[0, 30_000, 90_000, 200_000]);
        let ci = ci300();
        let run = || {
            Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
                Generation::New,
                Generation::New,
                5,
            ))
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.evicted_functions, b.evicted_functions);
    }

    #[test]
    fn workload_outrunning_its_ci_trace_is_a_construction_error() {
        // 600 minutes of CI, an arrival at minute 600 (start of minute
        // 601): the old code silently froze at the last sample; now it
        // is a typed construction-time error.
        let trace = trace_of(&[0, 600 * MINUTE_MS]);
        let ci = ci300();
        let err = Simulation::try_new(&trace, &ci, skus::pair_a()).unwrap_err();
        match err {
            ecolife_carbon::CiError::TooShort {
                ci_ms, required_ms, ..
            } => {
                assert_eq!(ci_ms, 600 * MINUTE_MS);
                assert_eq!(required_ms, 600 * MINUTE_MS + 1);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // The explicit opt-in: extend the series cyclically, then build.
        let extended = ci.extend_cyclic(601);
        let m = Simulation::try_new(&trace, &extended, skus::pair_a())
            .unwrap()
            .run(&mut Fixed::new(Generation::New, Generation::New, 0));
        assert_eq!(m.invocations(), 2);
        // Exactly covering the span passes (last arrival reads a real
        // sample).
        assert!(Simulation::try_new(&trace_of(&[0, 599 * MINUTE_MS]), &ci, skus::pair_a()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid simulation")]
    fn new_panics_rather_than_freezing_ci() {
        let trace = trace_of(&[0, 700 * MINUTE_MS]);
        let ci = ci300();
        Simulation::new(&trace, &ci, skus::pair_a());
    }

    #[test]
    fn regional_construction_resolves_per_node_series() {
        use ecolife_carbon::{CiBundle, Region};
        let trace = trace_of(&[0]);
        let bundle = CiBundle::new(vec![
            (Region::Texas, CarbonIntensityTrace::constant(400.0, 60)),
            (Region::NewYork, CarbonIntensityTrace::constant(100.0, 60)),
        ])
        .unwrap();
        let fleet = skus::fleet_a()
            .with_region(NodeId(0), Region::Texas)
            .with_region(NodeId(1), Region::NewYork);
        let sim = Simulation::try_new_regional(&trace, &bundle, fleet.clone()).unwrap();
        assert_eq!(sim.ci().at(NodeId(0), 0), 400.0);
        assert_eq!(sim.ci().at(NodeId(1), 0), 100.0);
        // Executing on the NY node must be accounted at NY intensity:
        // 4× lower operational carbon than the same run on the Texas
        // grid would pay per kWh.
        let m = sim.run(&mut Fixed::new(NodeId(1), NodeId(1), 0));
        let on_tex = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .unwrap()
            .run(&mut Fixed::new(NodeId(0), NodeId(0), 0));
        assert!(m.records[0].service_carbon.operational_g > 0.0);
        assert!(
            on_tex.records[0].service_carbon.operational_g
                > m.records[0].service_carbon.operational_g
        );
        // A node whose region has no series is a construction error.
        let uncovered = skus::fleet_a().with_region(NodeId(0), Region::Florida);
        assert!(matches!(
            Simulation::try_new_regional(&trace, &bundle, uncovered),
            Err(ecolife_carbon::CiError::MissingRegion { .. })
        ));
    }

    #[test]
    fn three_node_fleet_runs_end_to_end() {
        let trace = trace_of(&[0, 2 * MINUTE_MS, 4 * MINUTE_MS]);
        let ci = ci300();
        let fleet = skus::fleet_three_generations();
        let m = Simulation::new(&trace, &ci, fleet).run(&mut Fixed::new(NodeId(2), NodeId(1), 10));
        // Cold on the newest, then warm starts served from the mid node.
        assert_eq!(m.records[0].exec_location, NodeId(2));
        assert!(!m.records[0].warm);
        assert_eq!(m.records[1].exec_location, NodeId(1));
        assert!(m.records[1].warm);
        assert_eq!(m.warm_starts(), 2);
    }
}

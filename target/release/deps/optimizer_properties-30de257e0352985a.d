/root/repo/target/release/deps/optimizer_properties-30de257e0352985a.d: crates/pso/tests/optimizer_properties.rs Cargo.toml

/root/repo/target/release/deps/liboptimizer_properties-30de257e0352985a.rmeta: crates/pso/tests/optimizer_properties.rs Cargo.toml

crates/pso/tests/optimizer_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

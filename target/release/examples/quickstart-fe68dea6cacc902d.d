/root/repo/target/release/examples/quickstart-fe68dea6cacc902d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fe68dea6cacc902d: examples/quickstart.rs

examples/quickstart.rs:

//! `ecolife-trace` — tail, filter, verify, and diff engine event streams.
//!
//! ```text
//! ecolife-trace tail   <run.jsonl> [-n N] [--follow] [--poll-ms MS]
//!                                  [--max-polls N]
//! ecolife-trace filter <run.jsonl> [--type T] [--node N] [--func F]
//!                                  [--from MS] [--to MS] [--pretty]
//! ecolife-trace verify <run.jsonl>
//! ecolife-trace diff   <a.jsonl> <b.jsonl>
//! ```
//!
//! `tail --follow` polls the file (a live [`JsonlSink`] stream) and
//! hash-chain-verifies every event *incrementally* as it lands — a
//! writer crash mid-line, a truncated file, or any tampering breaks the
//! chain and the command exits 2 on the spot. It stops cleanly at
//! `RunEnded`, or after `--max-polls` consecutive idle polls when set.
//!
//! Exit codes: `verify` and a broken `--follow` chain exit 2, `diff`
//! exits 1 on divergence — so all three slot straight into CI.
//!
//! [`JsonlSink`]: ecolife_telemetry::JsonlSink

use ecolife_telemetry::{diff_lines, pretty, str_field, u64_field, verify_lines, ChainWalker};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ecolife-trace tail   <run.jsonl> [-n N] [--follow] [--poll-ms MS] \
         [--max-polls N]\n  ecolife-trace filter <run.jsonl> \
         [--type T] [--node N] [--func F] [--from MS] [--to MS] [--pretty]\n  ecolife-trace \
         verify <run.jsonl>\n  ecolife-trace diff   <a.jsonl> <b.jsonl>"
    );
    ExitCode::from(64)
}

fn read_lines(path: &str) -> Result<Vec<String>, ExitCode> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text.lines().map(str::to_string).collect()),
        Err(e) => {
            eprintln!("ecolife-trace: cannot read {path}: {e}");
            Err(ExitCode::from(66))
        }
    }
}

/// The instant a line is "about", for `--from`/`--to`: its `t_ms` when
/// present, else the expiry instant, else the period minute. Lines with
/// no time anchor (run start/end) always pass the range filter.
fn event_time(line: &str) -> Option<u64> {
    u64_field(line, "t_ms")
        .or_else(|| u64_field(line, "expiry_ms"))
        .or_else(|| u64_field(line, "end_ms"))
        .or_else(|| u64_field(line, "minute").map(|m| m * 60_000))
}

struct Filter {
    type_name: Option<String>,
    node: Option<u64>,
    func: Option<u64>,
    from_ms: Option<u64>,
    to_ms: Option<u64>,
}

impl Filter {
    fn keep(&self, line: &str) -> bool {
        if let Some(ref want) = self.type_name {
            if str_field(line, "type") != Some(want.as_str()) {
                return false;
            }
        }
        if let Some(node) = self.node {
            // An event "touches" a node through any of its node-valued
            // fields (transfers carry two).
            let touches = [
                u64_field(line, "node"),
                u64_field(line, "exec_node"),
                u64_field(line, "from"),
                u64_field(line, "to"),
            ]
            .into_iter()
            .flatten()
            .any(|n| n == node);
            if !touches {
                return false;
            }
        }
        if let Some(func) = self.func {
            if u64_field(line, "func") != Some(func) {
                return false;
            }
        }
        if self.from_ms.is_some() || self.to_ms.is_some() {
            if let Some(t) = event_time(line) {
                if self.from_ms.is_some_and(|from| t < from) {
                    return false;
                }
                if self.to_ms.is_some_and(|to| t > to) {
                    return false;
                }
            }
        }
        true
    }
}

fn parse_u64_arg(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, ExitCode> {
    let v = args.next().ok_or_else(|| {
        eprintln!("ecolife-trace: {flag} needs a value");
        ExitCode::from(64)
    })?;
    v.parse().map_err(|_| {
        eprintln!("ecolife-trace: {flag} expects an integer, got '{v}'");
        ExitCode::from(64)
    })
}

/// Follow a live JSONL stream: poll the file, feed each *complete* new
/// line through a [`ChainWalker`] (incremental hash-chain verify — exit
/// 2 the moment a link breaks or the file is truncated), and echo the
/// verified lines to stdout (the last `n` of the initial backlog, then
/// everything as it lands). Status goes to stderr so stdout stays pure
/// JSONL. Stops at `RunEnded`, or after `max_polls` consecutive idle
/// polls when `max_polls > 0`.
fn tail_follow(path: &str, n: usize, poll_ms: u64, max_polls: u64) -> Result<ExitCode, ExitCode> {
    let mut walker = ChainWalker::new();
    let mut consumed = 0usize;
    let mut backlog_shown = false;
    let mut idle = 0u64;
    loop {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            // Not-yet-created counts as an idle poll: the writer may
            // still be opening the sink.
            Err(_) if consumed == 0 => String::new(),
            Err(e) => {
                eprintln!("ecolife-trace: cannot read {path}: {e}");
                return Err(ExitCode::from(66));
            }
        };
        // A writer may be mid-line; only lines sealed by '\n' count.
        let complete = match text.rfind('\n') {
            Some(end) => &text[..end],
            None => "",
        };
        let lines: Vec<&str> = if complete.is_empty() {
            Vec::new()
        } else {
            complete.lines().collect()
        };
        if lines.len() < consumed {
            eprintln!(
                "{path}: truncated while following ({} events verified, now {} lines)",
                consumed,
                lines.len()
            );
            return Ok(ExitCode::from(2));
        }
        let fresh = &lines[consumed..];
        let print_from = if backlog_shown {
            0
        } else {
            fresh.len().saturating_sub(n)
        };
        for (i, line) in fresh.iter().enumerate() {
            if let Err(e) = walker.push(line) {
                eprintln!("{path}: {e}");
                return Ok(ExitCode::from(2));
            }
            if i >= print_from {
                println!("{line}");
            }
            if str_field(line, "type") == Some("RunEnded") {
                let s = walker.summary();
                eprintln!(
                    "follow: run ended — {} events, chain tip {}",
                    s.events, s.tip
                );
                return Ok(ExitCode::SUCCESS);
            }
        }
        consumed = lines.len();
        if !fresh.is_empty() {
            backlog_shown = true;
            idle = 0;
        } else {
            idle += 1;
            if max_polls > 0 && idle >= max_polls {
                let s = walker.summary();
                eprintln!(
                    "follow: idle after {idle} polls — {} events verified, chain tip {}",
                    s.events, s.tip
                );
                return Ok(ExitCode::SUCCESS);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
}

fn run() -> Result<ExitCode, ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "tail" => {
            let mut rest = args[1..].iter();
            let mut path = None;
            let mut n = 10usize;
            let mut follow = false;
            let mut poll_ms = 200u64;
            let mut max_polls = 0u64; // 0 = follow until RunEnded
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "-n" => n = parse_u64_arg(&mut rest, "-n")? as usize,
                    "--follow" | "-f" => follow = true,
                    "--poll-ms" => poll_ms = parse_u64_arg(&mut rest, "--poll-ms")?,
                    "--max-polls" => max_polls = parse_u64_arg(&mut rest, "--max-polls")?,
                    _ if path.is_none() => path = Some(arg.clone()),
                    _ => return Err(usage()),
                }
            }
            let path = path.ok_or_else(usage)?;
            if follow {
                return tail_follow(&path, n, poll_ms, max_polls);
            }
            let lines = read_lines(&path)?;
            let start = lines.len().saturating_sub(n);
            for line in &lines[start..] {
                println!("{line}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "filter" => {
            let mut rest = args[1..].iter();
            let mut path = None;
            let mut pretty_out = false;
            let mut filter = Filter {
                type_name: None,
                node: None,
                func: None,
                from_ms: None,
                to_ms: None,
            };
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--type" => {
                        filter.type_name = Some(
                            rest.next()
                                .ok_or_else(|| {
                                    eprintln!("ecolife-trace: --type needs a value");
                                    ExitCode::from(64)
                                })?
                                .clone(),
                        )
                    }
                    "--node" => filter.node = Some(parse_u64_arg(&mut rest, "--node")?),
                    "--func" => filter.func = Some(parse_u64_arg(&mut rest, "--func")?),
                    "--from" => filter.from_ms = Some(parse_u64_arg(&mut rest, "--from")?),
                    "--to" => filter.to_ms = Some(parse_u64_arg(&mut rest, "--to")?),
                    "--pretty" => pretty_out = true,
                    _ if path.is_none() => path = Some(arg.clone()),
                    _ => return Err(usage()),
                }
            }
            let lines = read_lines(&path.ok_or_else(usage)?)?;
            let mut matched = 0u64;
            for line in &lines {
                if filter.keep(line) {
                    matched += 1;
                    if pretty_out {
                        println!("{}", pretty(line));
                    } else {
                        println!("{line}");
                    }
                }
            }
            eprintln!("{matched} of {} events matched", lines.len());
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let [_, path] = args.as_slice() else {
                return Err(usage());
            };
            let lines = read_lines(path)?;
            match verify_lines(lines.iter().map(String::as_str)) {
                Ok(summary) => {
                    println!(
                        "ok: {} events, chain tip {} ({path})",
                        summary.events, summary.tip
                    );
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    Ok(ExitCode::from(2))
                }
            }
        }
        "diff" => {
            let [_, left_path, right_path] = args.as_slice() else {
                return Err(usage());
            };
            let left = read_lines(left_path)?;
            let right = read_lines(right_path)?;
            let l: Vec<&str> = left.iter().map(String::as_str).collect();
            let r: Vec<&str> = right.iter().map(String::as_str).collect();
            match diff_lines(&l, &r) {
                None => {
                    println!(
                        "identical: {} events ({left_path} vs {right_path})",
                        l.len()
                    );
                    Ok(ExitCode::SUCCESS)
                }
                Some(div) => {
                    println!("{left_path} vs {right_path}\n{div}");
                    Ok(ExitCode::from(1))
                }
            }
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(code) => code,
    }
}

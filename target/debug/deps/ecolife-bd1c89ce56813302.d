/root/repo/target/debug/deps/ecolife-bd1c89ce56813302.d: src/lib.rs

/root/repo/target/debug/deps/libecolife-bd1c89ce56813302.rlib: src/lib.rs

/root/repo/target/debug/deps/libecolife-bd1c89ce56813302.rmeta: src/lib.rs

src/lib.rs:

//! CPU package model: core count, power envelope, embodied carbon, and a
//! relative performance index.
//!
//! The embodied-carbon values are derived from the Boavizta server
//! manufacturing methodology [25] and the Teads AWS EC2 carbon dataset [34]
//! cited by the paper: a modern high-core-count Xeon package lands in the
//! 15–30 kgCO2e range, with newer, larger dies at the top of the range.

/// A CPU package from a specific generation.
///
/// `perf_index` is a dimensionless single-thread throughput index relative
/// to the newest generation in the catalog (which has `perf_index == 1.0`).
/// A `perf_index` of `0.8` means a CPU-bound region takes `1 / 0.8 = 1.25x`
/// longer than on the reference part.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Marketing name, e.g. `"Intel Xeon E5-2686"`.
    pub name: &'static str,
    /// Release year; drives the old/new classification narrative.
    pub year: u16,
    /// Physical cores exposed for scheduling.
    pub cores: u32,
    /// Whole-package power when fully assigned to a serverless execution (W).
    pub active_power_w: f64,
    /// Power attributable to a single core kept powered for a warm
    /// container during the keep-alive period (W).
    pub idle_core_power_w: f64,
    /// Total embodied carbon of the package (gCO2e), amortized over
    /// [`crate::DEFAULT_LIFETIME_MS`].
    pub embodied_g: f64,
    /// Relative single-thread performance (1.0 = reference generation).
    pub perf_index: f64,
}

impl CpuModel {
    /// Embodied carbon per core (gCO2e). During the keep-alive period only
    /// one core is reserved, so the per-core share is what accrues
    /// (Sec. II: `EC_CPU / Core_num`).
    #[inline]
    pub fn embodied_per_core_g(&self) -> f64 {
        self.embodied_g / self.cores as f64
    }

    /// Embodied carbon accrued by assigning the *whole* package for
    /// `duration_ms` (the execution/service phase attribution in Sec. II).
    #[inline]
    pub fn embodied_for_full_package_g(&self, duration_ms: u64, lifetime_ms: u64) -> f64 {
        self.embodied_g * duration_ms as f64 / lifetime_ms as f64
    }

    /// Embodied carbon accrued by reserving a single core for
    /// `duration_ms` (the keep-alive phase attribution in Sec. II).
    #[inline]
    pub fn embodied_for_one_core_g(&self, duration_ms: u64, lifetime_ms: u64) -> f64 {
        self.embodied_per_core_g() * duration_ms as f64 / lifetime_ms as f64
    }

    /// Energy (kWh) drawn by the whole package running flat out for
    /// `duration_ms`.
    #[inline]
    pub fn active_energy_kwh(&self, duration_ms: u64) -> f64 {
        watts_ms_to_kwh(self.active_power_w, duration_ms)
    }

    /// Energy (kWh) drawn by one reserved core over a keep-alive period of
    /// `duration_ms`.
    #[inline]
    pub fn idle_core_energy_kwh(&self, duration_ms: u64) -> f64 {
        watts_ms_to_kwh(self.idle_core_power_w, duration_ms)
    }

    /// Slowdown factor relative to the reference generation:
    /// `exec_time(self) = exec_time(reference) * slowdown()` for a fully
    /// CPU-sensitive region.
    #[inline]
    pub fn slowdown(&self) -> f64 {
        1.0 / self.perf_index
    }

    /// Concurrency limit of a bounded executor hosted on this package:
    /// one in-flight serverless execution per physical core (an execution
    /// is modelled as owning its core for its service time). Never zero,
    /// so a degenerate hand-built model still executes.
    #[inline]
    pub fn executor_slots(&self) -> usize {
        self.cores.max(1) as usize
    }
}

/// Convert `power_w` sustained for `duration_ms` into kWh.
#[inline]
pub fn watts_ms_to_kwh(power_w: f64, duration_ms: u64) -> f64 {
    // W * ms = mJ; kWh = J / 3.6e6 = mJ / 3.6e9.
    power_w * duration_ms as f64 / 3.6e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_LIFETIME_MS;

    fn sample() -> CpuModel {
        CpuModel {
            name: "Test Xeon",
            year: 2018,
            cores: 20,
            active_power_w: 200.0,
            idle_core_power_w: 2.0,
            embodied_g: 20_000.0,
            perf_index: 0.8,
        }
    }

    #[test]
    fn embodied_per_core_divides_by_core_count() {
        assert_eq!(sample().embodied_per_core_g(), 1_000.0);
    }

    #[test]
    fn full_package_embodied_scales_linearly_with_time() {
        let c = sample();
        let one = c.embodied_for_full_package_g(1_000, DEFAULT_LIFETIME_MS);
        let ten = c.embodied_for_full_package_g(10_000, DEFAULT_LIFETIME_MS);
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn one_core_embodied_is_a_core_share_of_full_package() {
        let c = sample();
        let full = c.embodied_for_full_package_g(60_000, DEFAULT_LIFETIME_MS);
        let core = c.embodied_for_one_core_g(60_000, DEFAULT_LIFETIME_MS);
        assert!((full / core - c.cores as f64).abs() < 1e-9);
    }

    #[test]
    fn active_energy_matches_hand_computation() {
        // 200 W for one hour = 0.2 kWh.
        let c = sample();
        let kwh = c.active_energy_kwh(3_600_000);
        assert!((kwh - 0.2).abs() < 1e-12);
    }

    #[test]
    fn idle_energy_is_small_fraction_of_active() {
        let c = sample();
        let idle = c.idle_core_energy_kwh(3_600_000);
        let active = c.active_energy_kwh(3_600_000);
        assert!(idle < active / 50.0);
    }

    #[test]
    fn slowdown_inverts_perf_index() {
        assert!((sample().slowdown() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn executor_slots_follow_cores_and_never_vanish() {
        assert_eq!(sample().executor_slots(), 20);
        let degenerate = CpuModel {
            cores: 0,
            ..sample()
        };
        assert_eq!(degenerate.executor_slots(), 1);
    }

    #[test]
    fn watts_ms_to_kwh_zero_duration() {
        assert_eq!(watts_ms_to_kwh(500.0, 0), 0.0);
    }
}

/root/repo/target/debug/deps/ecolife_bench-f0eabb63cf5c5121.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libecolife_bench-f0eabb63cf5c5121.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libecolife_bench-f0eabb63cf5c5121.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

//! Region study: how the grid's carbon-intensity profile changes what
//! EcoLife does — and what it saves.
//!
//! Replays the same workload under all five evaluated grid regions
//! (Tennessee, Texas, Florida, New York, California) and reports, per
//! region, EcoLife vs the fixed New-Only policy and vs the Oracle.
//!
//! Run with: `cargo run --release --example carbon_region_study`

use ecolife::core::runner::parallel_map;
use ecolife::prelude::*;

fn main() {
    let trace = SynthTraceConfig {
        n_functions: 32,
        duration_min: 720, // half a day: covers the solar ramp in CAL
        seed: 1234,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(12 * 1024);

    println!(
        "{:<6} {:>9} {:>14} {:>14} {:>16} {:>14}",
        "region", "mean CI", "EcoLife CO2 g", "NewOnly CO2 g", "saving vs fixed", "gap to Oracle"
    );

    let rows = parallel_map(Region::ALL.to_vec(), |region| {
        let ci = CarbonIntensityTrace::synthetic(region, 760, 1234);
        let mut ecolife = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
        let (eco, _) = run_scheme(&trace, &ci, &fleet, &mut ecolife);
        let (fixed, _) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::new_only());
        let (oracle, _) = run_scheme(
            &trace,
            &ci,
            &fleet,
            &mut BruteForce::oracle(fleet.clone(), ci.clone()),
        );
        (region, ci.mean(), eco, fixed, oracle)
    });

    for (region, mean_ci, eco, fixed, oracle) in rows {
        println!(
            "{:<6} {:>9.0} {:>14.2} {:>14.2} {:>15.1}% {:>13.1}%",
            region.label(),
            mean_ci,
            eco.total_carbon_g,
            fixed.total_carbon_g,
            100.0 * (1.0 - eco.total_carbon_g / fixed.total_carbon_g),
            100.0 * (eco.total_carbon_g / oracle.total_carbon_g - 1.0),
        );
    }

    println!(
        "\nCarbon-heavy flat grids (FLA, TEN) reward aggressive keep-alive on old\n\
         hardware; solar-swing grids (CAL) reward re-timing keep-alive against\n\
         the duck curve. EcoLife adapts per region with no reconfiguration."
    );
}

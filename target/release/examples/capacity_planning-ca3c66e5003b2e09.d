/root/repo/target/release/examples/capacity_planning-ca3c66e5003b2e09.d: examples/capacity_planning.rs Cargo.toml

/root/repo/target/release/examples/libcapacity_planning-ca3c66e5003b2e09.rmeta: examples/capacity_planning.rs Cargo.toml

examples/capacity_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

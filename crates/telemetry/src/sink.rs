//! Event sinks: where a finalized stream goes.
//!
//! The trait carries a `const ENABLED` so the engine can monomorphize
//! telemetry away entirely: every collection point is guarded by
//! `if K::ENABLED`, which is a compile-time constant — a run with
//! [`NullSink`] compiles to exactly the untraced engine (the replay
//! benches pin this: the engine row must not move with telemetry
//! compiled in but disabled).

use crate::chain::SequencedEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Receives the finalized, hash-chained stream in sequence order.
pub trait EventSink {
    /// Whether the engine should collect events at all. `false` turns
    /// every emission site into dead code.
    const ENABLED: bool;

    fn emit(&mut self, event: &SequencedEvent);

    /// Called once after the last event.
    fn flush(&mut self) {}
}

/// The zero-cost default: telemetry compiled in, collection compiled out.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;
    #[inline(always)]
    fn emit(&mut self, _event: &SequencedEvent) {}
}

/// Buffered JSONL file sink: one sealed event line per line.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl EventSink for JsonlSink {
    const ENABLED: bool = true;
    fn emit(&mut self, event: &SequencedEvent) {
        // The engine has nowhere to surface an I/O error mid-run;
        // failing loudly beats silently truncating a golden trace.
        self.writer
            .write_all(event.line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .expect("telemetry: JSONL sink write failed");
    }
    fn flush(&mut self) {
        self.writer
            .flush()
            .expect("telemetry: JSONL sink flush failed");
    }
}

/// In-memory capture for tests and golden generation.
#[derive(Debug, Default, Clone)]
pub struct CaptureSink {
    pub events: Vec<SequencedEvent>,
}

impl CaptureSink {
    /// The serialized lines, in stream order.
    pub fn lines(&self) -> Vec<&str> {
        self.events.iter().map(|e| e.line.as_str()).collect()
    }

    /// Hash of the last event (the chain tip), if any.
    pub fn tip(&self) -> Option<&str> {
        self.events.last().map(|e| e.hash.as_str())
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The whole stream as JSONL text (what [`JsonlSink`] would have
    /// written).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.line);
            out.push('\n');
        }
        out
    }
}

impl EventSink for CaptureSink {
    const ENABLED: bool = true;
    fn emit(&mut self, event: &SequencedEvent) {
        self.events.push(event.clone());
    }
}

//! # ecolife-carbon — carbon-intensity traces and the serverless carbon model
//!
//! Two substrates live here:
//!
//! 1. **Carbon-intensity traces** ([`intensity`]): minute-resolution
//!    gCO2/kWh time series for the five grid regions the paper evaluates
//!    (CISO/California, Tennessee, Texas, Florida, New York). A seeded
//!    synthetic generator reproduces each region's published mean and
//!    fluctuation statistics (the paper reports CISO fluctuating by an
//!    average of 6.75% hourly with a standard deviation of 59.24); a CSV
//!    parser accepts real Electricity Maps exports.
//!
//! 2. **The serverless carbon-footprint model** ([`model`]): the Sec. II
//!    first-order formulas splitting a function's footprint into embodied
//!    and operational components across the keep-alive, cold-start, and
//!    execution phases, attributed by DRAM share and CPU core share.
//!
//! Multi-region fleets read CI through [`bundle`]: a validated
//! region-keyed [`CiBundle`] (one series per region, equal spans)
//! resolved per fleet node by [`CiProvider`] — `at(node, t)` is the
//! intensity on *that node's grid*. Construction is strict: missing
//! regions and series shorter than the workload are typed [`CiError`]s,
//! never silently clamped reads ([`CarbonIntensityTrace::extend_cyclic`]
//! is the explicit opt-in for tiling a feed over longer horizons).

pub mod bundle;
pub mod footprint;
pub mod intensity;
pub mod model;
pub mod transfer;

pub use bundle::{CiBundle, CiError, CiProvider, StalenessPolicy};
pub use footprint::CarbonFootprint;
pub use intensity::{CarbonIntensityTrace, Region, RegionProfile};
pub use model::{CarbonModel, CarbonModelConfig};
pub use transfer::TransferCost;

/root/repo/target/release/examples/azure_trace_replay-e6e63580bad7ff7c.d: examples/azure_trace_replay.rs Cargo.toml

/root/repo/target/release/examples/libazure_trace_replay-e6e63580bad7ff7c.rmeta: examples/azure_trace_replay.rs Cargo.toml

examples/azure_trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

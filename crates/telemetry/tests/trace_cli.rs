//! End-to-end tests for the `ecolife-trace` binary's `tail --follow`
//! mode: spawn the real executable against a JSONL file that grows
//! under it, and pin the three exits — clean at `RunEnded`, idle after
//! `--max-polls`, and non-zero the moment the hash chain breaks.

use ecolife_telemetry::{finalize, lane, CaptureSink, Event, EventKey};
use std::io::Write;
use std::process::{Command, Stdio};

/// A short, fully valid hash-chained stream.
fn chained_lines() -> Vec<String> {
    let events = vec![
        (
            EventKey::new(0, lane::RUN_STARTED, 0, 0),
            Event::RunStarted {
                invocations: 2,
                functions: 1,
                nodes: 1,
                horizon_ms: 60_000,
            },
        ),
        (
            EventKey::new(0, lane::PERIOD_STARTED, 0, 0),
            Event::PeriodStarted { minute: 0 },
        ),
        (
            EventKey::new(0, lane::CI_OBSERVED, 0, 0),
            Event::CiObserved {
                region: "CAL".to_string(),
                t_ms: 0,
                gco2_per_kwh: 250.0,
            },
        ),
        (
            EventKey::new(2, lane::RUN_ENDED, 0, 0),
            Event::RunEnded {
                invocations: 2,
                transfers: 0,
                evictions: 0,
                revocations: 0,
                expired: 0,
            },
        ),
    ];
    let mut sink = CaptureSink::default();
    finalize(events, &mut sink);
    sink.lines().iter().map(|l| l.to_string()).collect()
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ecolife-trace-{tag}-{}.jsonl", std::process::id()));
    p
}

fn follow_cmd(path: &std::path::Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ecolife-trace"));
    cmd.arg("tail")
        .arg(path)
        .args(["--follow", "--poll-ms", "10"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// A valid hash-chained stream that exercises every fault event type:
/// a crash with a rejected invocation, a stale→restored CI feed, a
/// partition with a retried transfer, then recovery.
fn chaos_lines() -> Vec<String> {
    let events = vec![
        (
            EventKey::new(0, lane::RUN_STARTED, 0, 0),
            Event::RunStarted {
                invocations: 1,
                functions: 1,
                nodes: 2,
                horizon_ms: 120_000,
            },
        ),
        (
            EventKey::new(0, lane::CI_HEALTH, 0, 0),
            Event::CiStale {
                region: "TEN".to_string(),
                t_ms: 0,
                until_ms: 90_000,
            },
        ),
        (
            EventKey::new(0, lane::CRASH, 1, 0),
            Event::NodeCrashed {
                node: 1,
                t_ms: 10_000,
                recover_ms: 70_000,
            },
        ),
        (
            EventKey::new(0, lane::PARTITION, 0, 0),
            Event::PartitionStarted {
                regions: "TEN".to_string(),
                t_ms: 20_000,
                until_ms: 80_000,
            },
        ),
        (
            EventKey::new(0, lane::INVOCATION, 0, 0),
            Event::CrashRejected {
                index: 0,
                func: 3,
                node: 1,
                t_ms: 30_000,
            },
        ),
        (
            EventKey::new(0, lane::INVOCATION, 0, 1),
            Event::TransferRetried {
                func: 3,
                node: 0,
                t_ms: 40_000,
                attempt: 1,
                backoff_ms: 250,
            },
        ),
        (
            EventKey::new(1, lane::CRASH, 1, 0),
            Event::NodeRecovered {
                node: 1,
                t_ms: 70_000,
            },
        ),
        (
            EventKey::new(1, lane::PARTITION, 0, 0),
            Event::PartitionHealed {
                regions: "TEN".to_string(),
                t_ms: 80_000,
            },
        ),
        (
            EventKey::new(1, lane::CI_HEALTH, 0, 0),
            Event::CiRestored {
                region: "TEN".to_string(),
                t_ms: 90_000,
            },
        ),
        (
            EventKey::new(2, lane::RUN_ENDED, 0, 0),
            Event::RunEnded {
                invocations: 1,
                transfers: 0,
                evictions: 1,
                revocations: 0,
                expired: 0,
            },
        ),
    ];
    let mut sink = CaptureSink::default();
    finalize(events, &mut sink);
    sink.lines().iter().map(|l| l.to_string()).collect()
}

#[test]
fn verify_and_filter_work_across_a_chaos_stream() {
    let lines = chaos_lines();
    let path = scratch_path("chaos");
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    // The hash chain must verify straight through every fault event.
    let out = Command::new(env!("CARGO_BIN_EXE_ecolife-trace"))
        .arg("verify")
        .arg(&path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "verify failed on a chaos stream: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `--type` must select exactly the named fault events.
    for (ty, want) in [
        ("NodeCrashed", 1usize),
        ("TransferRetried", 1),
        ("CrashRejected", 1),
        ("PartitionStarted", 1),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_ecolife-trace"))
            .args(["filter"])
            .arg(&path)
            .args(["--type", ty])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .output()
            .unwrap();
        assert!(out.status.success(), "filter --type {ty} failed");
        let stdout = String::from_utf8(out.stdout).unwrap();
        let hits: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(hits.len(), want, "--type {ty} selected: {stdout}");
        let needle = format!("\"type\":\"{ty}\"");
        assert!(
            hits.iter().all(|l| l.contains(&needle)),
            "--type {ty} leaked other events: {stdout}"
        );
    }

    // `--node 1` must pick out the crash lifecycle and the rejected
    // invocation, and nothing routed at node 0.
    let out = Command::new(env!("CARGO_BIN_EXE_ecolife-trace"))
        .args(["filter"])
        .arg(&path)
        .args(["--node", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for ty in ["NodeCrashed", "NodeRecovered", "CrashRejected"] {
        assert!(
            stdout.contains(&format!("\"type\":\"{ty}\"")),
            "--node 1 missed {ty}: {stdout}"
        );
    }
    assert!(
        !stdout.contains("TransferRetried"),
        "--node 1 leaked node 0's retry: {stdout}"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn follow_verifies_a_growing_stream_and_stops_at_run_ended() {
    let lines = chained_lines();
    let path = scratch_path("grow");
    // Start with only the first event on disk…
    std::fs::write(&path, format!("{}\n", lines[0])).unwrap();
    let child = follow_cmd(&path, &[]).spawn().unwrap();
    // …then let the "engine" append the rest, one poll apart, the last
    // write split mid-line to prove partial lines are held back.
    std::thread::sleep(std::time::Duration::from_millis(40));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(f, "{}", lines[1]).unwrap();
    f.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    let tail = format!("{}\n{}\n", lines[2], lines[3]);
    let (a, b) = tail.split_at(tail.len() / 2);
    f.write_all(a.as_bytes()).unwrap();
    f.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    f.write_all(b.as_bytes()).unwrap();
    f.flush().unwrap();

    let out = child.wait_with_output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for line in &lines {
        assert!(
            stdout.contains(line.as_str()),
            "missing echoed event: {line}"
        );
    }
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("run ended"), "stderr: {stderr}");
    assert!(stderr.contains("4 events"), "stderr: {stderr}");
}

#[test]
fn follow_gives_up_cleanly_after_max_idle_polls() {
    let lines = chained_lines();
    let path = scratch_path("idle");
    // A valid prefix that never reaches RunEnded.
    std::fs::write(&path, format!("{}\n{}\n", lines[0], lines[1])).unwrap();
    let out = follow_cmd(&path, &["--max-polls", "3"])
        .spawn()
        .unwrap()
        .wait_with_output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("idle"), "stderr: {stderr}");
    assert!(stderr.contains("2 events verified"), "stderr: {stderr}");
}

#[test]
fn follow_exits_two_on_a_broken_chain() {
    let lines = chained_lines();
    let path = scratch_path("broken");
    std::fs::write(&path, format!("{}\n", lines[0])).unwrap();
    let child = follow_cmd(&path, &["--max-polls", "50"]).spawn().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    // Append an event whose `prev` does not match the tip: tamper one
    // hex digit of the second line's prev-hash.
    let tampered = if lines[1].contains("\"prev\":\"a") {
        lines[1].replacen("\"prev\":\"a", "\"prev\":\"b", 1)
    } else {
        let i = lines[1].find("\"prev\":\"").unwrap() + "\"prev\":\"".len();
        let mut s = lines[1].clone();
        let old = s.as_bytes()[i];
        let new = if old == b'0' { '1' } else { '0' };
        s.replace_range(i..i + 1, &new.to_string());
        s
    };
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(f, "{tampered}").unwrap();
    f.flush().unwrap();
    let out = child.wait_with_output().unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/root/repo/target/release/deps/overhead_kdm-0270747fba923843.d: crates/bench/benches/overhead_kdm.rs

/root/repo/target/release/deps/overhead_kdm-0270747fba923843: crates/bench/benches/overhead_kdm.rs

crates/bench/benches/overhead_kdm.rs:

(function() {
    const implementors = Object.fromEntries([["ecolife_hw",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"ecolife_hw/node/enum.Generation.html\" title=\"enum ecolife_hw::node::Generation\">Generation</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ecolife_hw/node/struct.NodeId.html\" title=\"struct ecolife_hw::node::NodeId\">NodeId</a>",0]]],["ecolife_trace",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ecolife_trace/workload/struct.FunctionId.html\" title=\"struct ecolife_trace::workload::FunctionId\">FunctionId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[534,302]}
/root/repo/target/release/deps/fig9_single_gen-18a3a8f10420296d.d: crates/bench/benches/fig9_single_gen.rs

/root/repo/target/release/deps/fig9_single_gen-18a3a8f10420296d: crates/bench/benches/fig9_single_gen.rs

crates/bench/benches/fig9_single_gen.rs:

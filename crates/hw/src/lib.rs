//! # ecolife-hw — multi-generation hardware substrate
//!
//! This crate models the datacenter hardware that EcoLife schedules over:
//! CPUs and DRAM modules from different generations, their embodied carbon
//! footprints, their power draw, and their relative performance.
//!
//! The paper (Sec. II, Table I) evaluates three old/new hardware pairs:
//!
//! | Pair | Old CPU (year)              | New CPU (year)                | Old DRAM          | New DRAM           |
//! |------|-----------------------------|-------------------------------|-------------------|--------------------|
//! | A    | Xeon E5-2686 (2016)         | Xeon Platinum 8252C (2020)    | Micron-512 (2018) | Samsung-192 (2019) |
//! | B    | Xeon Platinum 8124M (2017)  | Xeon Platinum 8252C (2020)    | Micron-192 (2018) | Samsung-192 (2019) |
//! | C    | Xeon Platinum 8275L (2019)  | Xeon Platinum 8252C (2020)    | Samsung-192 (2019)| Samsung-192 (2019) |
//!
//! The key physical trade-off EcoLife exploits is encoded here:
//!
//! * **older hardware** → lower embodied carbon (smaller dies, older
//!   lithography, already amortized designs) and lower *per-core* idle power
//!   (more cores per package), but slower execution and worse energy
//!   efficiency per unit of work;
//! * **newer hardware** → higher embodied carbon but faster execution and
//!   lower operational energy per unit of work.
//!
//! All carbon quantities are in **grams of CO2e**, power in **watts**,
//! memory in **MiB**, and time in **milliseconds** unless a name says
//! otherwise.

pub mod cpu;
pub mod dram;
pub mod node;
pub mod pair;
pub mod perf;
pub mod power;
pub mod skus;

pub use cpu::CpuModel;
pub use dram::DramModel;
pub use node::{Generation, HardwareNode, NodeId};
pub use pair::{HardwarePair, PairId};
pub use perf::PerfModel;
pub use power::PowerDraw;

/// Default hardware lifetime used to amortize embodied carbon:
/// four years, per the paper (Sec. V, "a typical four-year lifetime
/// [35], [36] for DRAM and CPU").
pub const DEFAULT_LIFETIME_MS: u64 = 4 * 365 * 24 * 3600 * 1000;

/// Milliseconds per hour, used when converting power x time to kWh.
pub const MS_PER_HOUR: f64 = 3_600_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_is_four_years() {
        assert_eq!(DEFAULT_LIFETIME_MS, 126_144_000_000);
    }

    #[test]
    fn ms_per_hour_consistent() {
        assert_eq!(MS_PER_HOUR, 3600.0 * 1000.0);
    }
}

/root/repo/target/release/deps/criterion-cce987caeac1b688.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-cce987caeac1b688: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:

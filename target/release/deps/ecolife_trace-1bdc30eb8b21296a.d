/root/repo/target/release/deps/ecolife_trace-1bdc30eb8b21296a.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/ecolife_trace-1bdc30eb8b21296a: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

//! The EcoLife scheduler (Sec. IV, Algorithm 1), generalized to N-node
//! fleets.
//!
//! Per invocation:
//!
//! 1. **EPDM** picks the execution node (forced to the warm location
//!    when a warm container exists; otherwise the `fscore`-minimizing
//!    fleet node).
//! 2. The per-function predictor is updated with the arrival, producing
//!    the ΔF signal; the global carbon-intensity delta produces ΔCI.
//! 3. **KDM**: the function's Dynamic PSO perceives (ΔF, ΔCI) — adapting
//!    its weights and redistributing half the swarm on change — then runs
//!    a few iterations of the expected-objective fitness and emits the
//!    keep-alive (node, period) from its global best. The location axis
//!    of the search space spans the whole fleet
//!    (`SearchSpace::placement(n_nodes, n_periods)`).
//! 4. On pool overflow, the **warm-pool adjustment** ranks residents and
//!    the incoming container by keep-alive benefit density and displaces
//!    the losers toward the remaining nodes, cheapest keep-alive first.
//!
//! The decision loop is the hot path of every million-invocation replay,
//! so it is allocation-free: fleet-wide objective scans are served from
//! [`ObjectiveTables`] (per-function constants + per-minute CI
//! composites), the whole per-decision fitness landscape is precomputed
//! into reusable scratch so DPSO particle evaluations are table lookups,
//! and per-function state lives in a slot vector keyed by the raw
//! function id. Decisions are bit-identical to the uncached reference
//! loop (`EcoLifeConfig::without_cached_tables`), pinned by
//! `tests/hotpath.rs`.

use crate::config::EcoLifeConfig;
use crate::objective::{CostModel, ObjectiveTables};
use crate::predictor::FunctionPredictor;
use crate::warmpool::priority_adjustment_with_targets;
use ecolife_carbon::CarbonModel;
use ecolife_hw::{Fleet, NodeId, Region};
use ecolife_pso::space::decode;
use ecolife_pso::{DpsoConfig, DynamicPso, Optimizer, PsoConfig, SearchSpace};
use ecolife_sim::{
    Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx, Scheduler, MINUTE_MS,
};
use ecolife_trace::stats::SignalDelta;
use ecolife_trace::{FunctionId, Trace, WorkloadCatalog};

/// Per-function KDM state: the preserved optimizer plus the predictor.
struct FunctionState {
    swarm: DynamicPso,
    predictor: FunctionPredictor,
}

impl FunctionState {
    /// Build the per-function state: an independent, deterministically
    /// seeded swarm over the fleet-wide placement space plus a fresh
    /// arrival predictor.
    fn new(config: &EcoLifeConfig, n_nodes: usize, func: FunctionId) -> Self {
        let dpso_cfg = DpsoConfig {
            base: PsoConfig {
                // Independent, deterministic swarm per function.
                seed: config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(func.0 as u64 + 1)),
                ..config.dpso.base
            },
            ..config.dpso
        };
        FunctionState {
            swarm: DynamicPso::new(
                SearchSpace::placement(n_nodes, config.keepalive_grid_min.len()),
                dpso_cfg,
            ),
            predictor: FunctionPredictor::new(config.delta_f_window_ms),
        }
    }
}

/// Per-function state slots, indexed by raw [`FunctionId`].
///
/// Trace construction guarantees function ids are dense in
/// `0..catalog.len()`, so a direct-indexed slot vector replaces the seed's
/// `HashMap<FunctionId, FunctionState>` — the hot path's per-invocation
/// state lookup becomes one bounds-checked index instead of a SipHash of
/// the key, and iteration order questions disappear entirely (the map was
/// only ever read point-wise). Slots are boxed so growth moves 8-byte
/// pointers, not whole swarms.
#[derive(Default)]
struct FunctionStates {
    slots: Vec<Option<Box<FunctionState>>>,
    live: usize,
}

impl FunctionStates {
    fn clear(&mut self) {
        self.slots.clear();
        self.live = 0;
    }

    fn len(&self) -> usize {
        self.live
    }

    fn get(&self, func: FunctionId) -> Option<&FunctionState> {
        self.slots.get(func.as_usize()).and_then(|s| s.as_deref())
    }

    fn get_or_insert_with(
        &mut self,
        func: FunctionId,
        build: impl FnOnce() -> FunctionState,
    ) -> &mut FunctionState {
        let idx = func.as_usize();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].is_none() {
            self.slots[idx] = Some(Box::new(build()));
            self.live += 1;
        }
        self.slots[idx].as_deref_mut().expect("slot just filled")
    }
}

/// Reusable per-decision buffers: the hot path fills these in place
/// instead of allocating per invocation.
#[derive(Default)]
struct DecideScratch {
    /// Predictor snapshot over the keep-alive grid.
    p_warm: Vec<f64>,
    resident: Vec<f64>,
    /// Per-node executor backlog read for queue-aware placement.
    queue_ms: Vec<u64>,
    /// The `(node, grid index)` objective landscape of this decision
    /// (row-major by node) — the fitness the swarm optimizes, as lookups.
    objective: Vec<f64>,
}

/// Decode an optimizer position into the keep-alive (node, period-index)
/// choice — the single decode rule shared by the fitness function and the
/// emitted decision, so the swarm always optimizes exactly the mapping
/// its global best is read back through.
#[inline]
fn decode_placement(
    restrict: Option<NodeId>,
    n_nodes: usize,
    n_periods: usize,
    x: &[f64],
) -> (NodeId, usize) {
    let l = match restrict {
        Some(node) => node,
        None => NodeId(decode::node_index(x[0], n_nodes) as u32),
    };
    (l, decode::period_index(x[1], n_periods))
}

/// The EcoLife scheduler.
///
/// All cross-function state (the per-region ΔCI perception) is a pure
/// function of `(t, region)` — one [`SignalDelta`] per distinct fleet
/// region, each observed once per simulated minute from that region's
/// series — and per-function state (predictor + swarm, seeded from the
/// function id) never reads another function's history. So an EcoLife
/// instance handed only a function-hash shard of the trace makes
/// exactly the decisions the whole-trace instance makes for those
/// functions. That is what lets `Simulation::run_sharded` replay shards
/// in parallel, one EcoLife per shard, bit-identically — on
/// multi-region fleets too.
pub struct EcoLife {
    config: EcoLifeConfig,
    /// The cost model behind [`ObjectiveTables`]: the hot path reads all
    /// fleet-wide scans through the cache (decisions bit-identical to the
    /// uncached path — `EcoLifeConfig::cached_tables` selects which one
    /// runs, `tests/hotpath.rs` pins the equality).
    tables: ObjectiveTables,
    catalog: WorkloadCatalog,
    states: FunctionStates,
    /// One ΔCI tracker per distinct fleet region, in the provider's
    /// first-appearance (node id) order; initialized lazily on the first
    /// decision (the region set comes from the run's `CiProvider`).
    ci_deltas: Vec<(Region, SignalDelta)>,
    /// Minutes `0..=last_ci_minute` of every region's CI series have
    /// been fed to `ci_deltas` (one observation per simulated minute,
    /// invocation rhythm notwithstanding).
    last_ci_minute: Option<u64>,
    /// Reusable per-decision buffers.
    scratch: DecideScratch,
}

// Scheduler state must be shard-local: `run_sharded` moves one EcoLife
// instance into each worker thread.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EcoLife>();
};

impl EcoLife {
    /// Build the scheduler for a hardware fleet (a `HardwarePair`
    /// converts implicitly into its two-node fleet). `catalog` must be
    /// the trace's catalog (needed for warm-pool ranking of resident
    /// containers); `prepare` re-captures it from the trace as a guard.
    pub fn new(fleet: impl Into<Fleet>, config: EcoLifeConfig) -> Self {
        Self::with_carbon_model(fleet, config, CarbonModel::default())
    }

    /// Variant with an explicit carbon model (robustness studies).
    pub fn with_carbon_model(
        fleet: impl Into<Fleet>,
        config: EcoLifeConfig,
        carbon: CarbonModel,
    ) -> Self {
        config.validate();
        let fleet = fleet.into();
        if let Some(node) = config.restrict_to {
            assert!(
                fleet.contains(node),
                "restricted to {node:?}, which the fleet does not contain"
            );
        }
        let max_k_ms = *config.keepalive_grid_min.last().unwrap() * MINUTE_MS;
        let cost = CostModel::new(
            fleet,
            carbon,
            config.lambda_s,
            config.lambda_c,
            ecolife_sim::SimConfig::default().setup_delay_ms,
            max_k_ms,
        )
        .with_transfer_cost(config.transfer_cost);
        EcoLife {
            config,
            tables: ObjectiveTables::new(cost),
            catalog: WorkloadCatalog::default(),
            states: FunctionStates::default(),
            ci_deltas: Vec::new(),
            last_ci_minute: None,
            scratch: DecideScratch::default(),
        }
    }

    /// The cost model in use (exposed for the benches' analysis).
    pub fn cost_model(&self) -> &CostModel {
        self.tables.cost()
    }

    /// Number of per-function optimizers currently alive.
    pub fn tracked_functions(&self) -> usize {
        self.states.len()
    }

    fn decode_choice(&self, x: &[f64]) -> (NodeId, u64) {
        let (l, idx) = decode_placement(
            self.config.restrict_to,
            self.tables.cost().fleet().len(),
            self.config.keepalive_grid_min.len(),
            x,
        );
        (l, self.config.keepalive_grid_min[idx] * MINUTE_MS)
    }

    /// The cached decision hot path: every fleet-wide scan served from
    /// [`ObjectiveTables`], the whole fitness landscape of the decision
    /// precomputed once into a scratch grid (at most `nodes × grid`
    /// entries vs. 100+ particle evaluations), and no per-invocation
    /// clone of the cost model, profile, or grid.
    fn decide_cached(&mut self, ctx: &InvocationCtx<'_>, dci: f64) -> Decision {
        let restrict = self.config.restrict_to;
        self.tables.refresh(ctx.ci, ctx.t_ms);
        let exec = if self.config.queue_aware_placement && ctx.cluster.executors_enabled() {
            self.scratch.queue_ms.clear();
            for l in self.tables.cost().fleet().ids() {
                self.scratch
                    .queue_ms
                    .push(ctx.cluster.queue_wait_ms(l, ctx.t_ms));
            }
            self.tables
                .epdm_choice_queued(ctx.func, ctx.profile, restrict, &self.scratch.queue_ms)
        } else {
            self.tables.epdm_choice(ctx.func, ctx.profile, restrict)
        };

        let n_nodes = self.tables.cost().fleet().len();
        let grid_len = self.config.keepalive_grid_min.len();

        // Disjoint field borrows: predictor/swarm state, tables, and
        // scratch are touched simultaneously below.
        let Self {
            config,
            tables,
            states,
            scratch,
            ..
        } = self;

        // Update the arrival model *before* optimizing: the gap that just
        // closed is the freshest evidence about this function's rhythm.
        let state =
            states.get_or_insert_with(ctx.func, || FunctionState::new(config, n_nodes, ctx.func));
        state.predictor.record_arrival(ctx.t_ms);
        let df = state.predictor.delta_f();

        // Snapshot the predictor's answers over the whole grid, then
        // precompute the objective of every decodable (node, period)
        // choice — the fitness closure is a pure table lookup.
        scratch.p_warm.clear();
        scratch.resident.clear();
        for &m in &config.keepalive_grid_min {
            scratch.p_warm.push(state.predictor.p_warm(m * MINUTE_MS));
            scratch
                .resident
                .push(state.predictor.expected_resident_ms(m * MINUTE_MS));
        }
        tables.fill_objective_grid(
            ctx.func,
            ctx.profile,
            &config.keepalive_grid_min,
            &scratch.p_warm,
            &scratch.resident,
            restrict,
            &mut scratch.objective,
        );
        let objective: &[f64] = &scratch.objective;
        let fitness = move |x: &[f64]| -> f64 {
            let (l, idx) = decode_placement(restrict, n_nodes, grid_len, x);
            objective[l.index() * grid_len + idx]
        };

        if config.dynamic_pso {
            state.swarm.perceive(df, dci);
            // Perception-response includes re-anchoring: the environment
            // (CI, arrival stats) moved since the last invocation, so the
            // recorded global best is re-evaluated under today's fitness.
            state.swarm.refresh_gbest(&fitness);
        }
        for _ in 0..config.pso_iters {
            state.swarm.step(&fitness);
        }

        let (ka_loc, idx) =
            decode_placement(restrict, n_nodes, grid_len, state.swarm.best_position());
        let ka_ms = config.keepalive_grid_min[idx] * MINUTE_MS;

        Decision {
            exec,
            keepalive: (ka_ms > 0).then_some(KeepAliveChoice {
                location: ka_loc,
                duration_ms: ka_ms,
            }),
        }
    }

    /// The uncached reference path (the seed's decision loop): identical
    /// decisions to [`EcoLife::decide_cached`], recomputed fleet-wide per
    /// particle evaluation. Kept behind
    /// [`EcoLifeConfig::without_cached_tables`] as the bit-identity
    /// anchor (`tests/hotpath.rs`) and the `ecolife_hotpath` bench's
    /// "before" measurement.
    fn decide_uncached(&mut self, ctx: &InvocationCtx<'_>, dci: f64) -> Decision {
        let restrict = self.config.restrict_to;
        let ci_by_node = ctx.ci.at_each_node(ctx.t_ms);
        let exec = if self.config.queue_aware_placement && ctx.cluster.executors_enabled() {
            self.scratch.queue_ms.clear();
            for l in self.tables.cost().fleet().ids() {
                self.scratch
                    .queue_ms
                    .push(ctx.cluster.queue_wait_ms(l, ctx.t_ms));
            }
            self.tables.cost().epdm_choice_queued(
                ctx.profile,
                &ci_by_node,
                restrict,
                &self.scratch.queue_ms,
            )
        } else {
            self.tables
                .cost()
                .epdm_choice(ctx.profile, &ci_by_node, restrict)
        };

        let dynamic = self.config.dynamic_pso;
        let iters = self.config.pso_iters;
        let grid_len = self.config.keepalive_grid_min.len();
        let grid = self.config.keepalive_grid_min.clone();
        let cost = self.tables.cost().clone();
        let n_nodes = cost.fleet().len();
        let profile = ctx.profile.clone();

        let Self { config, states, .. } = self;
        let state =
            states.get_or_insert_with(ctx.func, || FunctionState::new(config, n_nodes, ctx.func));
        state.predictor.record_arrival(ctx.t_ms);
        let df = state.predictor.delta_f();

        // Snapshot the predictor's answers over the whole grid so the
        // fitness closure has no borrow of `state`.
        let p_warm: Vec<f64> = grid
            .iter()
            .map(|&m| state.predictor.p_warm(m * MINUTE_MS))
            .collect();
        let resident: Vec<f64> = grid
            .iter()
            .map(|&m| state.predictor.expected_resident_ms(m * MINUTE_MS))
            .collect();

        let fitness = move |x: &[f64]| -> f64 {
            let (l, idx) = decode_placement(restrict, n_nodes, grid_len, x);
            let k_ms = grid[idx] * MINUTE_MS;
            cost.expected_objective(
                &profile,
                l,
                k_ms,
                p_warm[idx],
                resident[idx],
                &ci_by_node,
                restrict,
            )
        };

        if dynamic {
            state.swarm.perceive(df, dci);
            state.swarm.refresh_gbest(&fitness);
        }
        for _ in 0..iters {
            state.swarm.step(&fitness);
        }

        let best = state.swarm.best_position().to_vec();
        let (ka_loc, ka_ms) = self.decode_choice(&best);

        Decision {
            exec,
            keepalive: (ka_ms > 0).then_some(KeepAliveChoice {
                location: ka_loc,
                duration_ms: ka_ms,
            }),
        }
    }
}

impl Scheduler for EcoLife {
    fn name(&self) -> &'static str {
        "EcoLife"
    }

    fn prepare(&mut self, trace: &Trace) {
        self.catalog = trace.catalog().clone();
        self.states.clear();
        self.ci_deltas.clear();
        self.last_ci_minute = None;
        self.tables.reset();
    }

    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        // Global ΔCI perception, one tracker per distinct fleet region:
        // one observation per minute of simulated time from each
        // region's series (carbon intensity is a minute-resolution
        // signal), catching up over minutes that carried no invocation.
        // Observing *every* minute for *every* region — rather than only
        // invocation-bearing minutes of some global trace — makes the
        // ΔCI state at time t a pure function of (t, region), independent
        // of which functions' arrivals this scheduler instance happens
        // to see; a per-shard EcoLife therefore perceives exactly what
        // the whole-trace one does, single- or multi-region.
        let minute = ctx.t_ms / MINUTE_MS;
        if self.ci_deltas.is_empty() {
            self.ci_deltas = ctx
                .ci
                .distinct_regions()
                .map(|(r, _)| (r, SignalDelta::new()))
                .collect();
        }
        let from = self.last_ci_minute.map_or(0, |m| m + 1);
        for m in from..=minute {
            for ((_, delta), (_, series)) in
                self.ci_deltas.iter_mut().zip(ctx.ci.distinct_regions())
            {
                delta.observe(series.at(m * MINUTE_MS));
            }
        }
        self.last_ci_minute = Some(minute);
        // The perception-response trigger is the largest-magnitude
        // normalized delta across the fleet's grids: a swing anywhere
        // the swarm could place a keep-alive is worth re-anchoring for.
        // On a single-region fleet this reduces to the paper's scalar
        // ΔCI exactly.
        let dci = self
            .ci_deltas
            .iter()
            .map(|(_, d)| d.normalized_delta())
            .max_by(|a, b| {
                a.abs()
                    .partial_cmp(&b.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0.0);

        // Both paths make bit-identical decisions (pinned by
        // `tests/hotpath.rs`); the cached one is the production hot path,
        // the uncached one the reference the cache is verified against.
        if self.config.cached_tables {
            self.decide_cached(ctx, dci)
        } else {
            self.decide_uncached(ctx, dci)
        }
    }

    fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
        if !self.config.warm_pool_adjustment {
            return OverflowAction::Drop;
        }
        // Transfer-target ranking: memoized per (node, minute) on the hot
        // path — intensities are minute-resolution, so overflow storms
        // within a minute reuse one fleet sort. (The `AdjustPlan` owns its
        // ranking, hence the clone of the ≤ fleet-size id vector.)
        let targets = if self.config.cached_tables {
            self.tables
                .transfer_ranking(ctx.location, ctx.t_ms, &ctx.ci_by_node)
                .to_vec()
        } else {
            self.tables
                .cost()
                .transfer_ranking(ctx.location, &ctx.ci_by_node)
        };
        // Rank candidates by benefit × P(reuse within 5 minutes): the
        // online predictor distinguishes drumbeat functions from ones
        // that have gone quiet.
        let states = &self.states;
        let weight = |func: FunctionId| -> f64 {
            states
                .get(func)
                .map(|s| s.predictor.p_warm(5 * MINUTE_MS))
                .unwrap_or(0.75)
        };
        let mut plan = priority_adjustment_with_targets(
            self.tables.cost(),
            &self.catalog,
            ctx,
            &weight,
            targets,
        );
        if self.config.restrict_to.is_some() {
            // A single-node variant (Eco-Old / Eco-New) never spills onto
            // the rest of the fleet: displaced containers are evicted.
            plan.transfer_targets = Some(vec![]);
        }
        OverflowAction::Adjust(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_carbon::CarbonIntensityTrace;
    use ecolife_hw::{skus, Generation};
    use ecolife_sim::Simulation;
    use ecolife_trace::{Invocation, SynthTraceConfig};

    fn small_trace() -> Trace {
        SynthTraceConfig::small(7).generate(&WorkloadCatalog::sebs())
    }

    #[test]
    fn runs_end_to_end_on_synthetic_trace() {
        let trace = small_trace();
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        let mut eco = EcoLife::new(skus::pair_a(), EcoLifeConfig::default());
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut eco);
        assert_eq!(m.invocations(), trace.len());
        assert!(m.total_carbon_g() > 0.0);
        assert!(eco.tracked_functions() > 0);
    }

    #[test]
    fn repeated_invocations_earn_warm_starts() {
        // A function invoked every 2 minutes: EcoLife must learn to keep
        // it alive and convert most starts to warm.
        let catalog = WorkloadCatalog::sebs();
        let (vid, _) = catalog.by_name("220.video-processing").unwrap();
        let invocations: Vec<Invocation> = (0..30)
            .map(|i| Invocation {
                func: vid,
                t_ms: i * 2 * MINUTE_MS,
            })
            .collect();
        let trace = Trace::new(catalog, invocations);
        let ci = CarbonIntensityTrace::constant(300.0, 120);
        let mut eco = EcoLife::new(skus::pair_a(), EcoLifeConfig::default());
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut eco);
        assert!(
            m.warm_rate() > 0.6,
            "warm rate {} too low for a regular function",
            m.warm_rate()
        );
    }

    #[test]
    fn restriction_pins_both_exec_and_keepalive() {
        let trace = small_trace();
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        for g in Generation::ALL {
            let mut eco = EcoLife::new(skus::pair_a(), EcoLifeConfig::default().restricted_to(g));
            let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut eco);
            assert!(
                m.records.iter().all(|r| r.exec_location == NodeId::from(g)),
                "restricted run leaked to another node"
            );
        }
    }

    #[test]
    fn restriction_pins_a_mid_fleet_node() {
        let trace = small_trace();
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        let fleet = skus::fleet_three_generations();
        let mut eco = EcoLife::new(
            fleet.clone(),
            EcoLifeConfig::default().restricted_to(NodeId(1)),
        );
        let m = Simulation::new(&trace, &ci, fleet).run(&mut eco);
        assert!(m.records.iter().all(|r| r.exec_location == NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "which the fleet does not contain")]
    fn restriction_outside_the_fleet_is_rejected() {
        EcoLife::new(
            skus::pair_a(),
            EcoLifeConfig::default().restricted_to(NodeId(5)),
        );
    }

    #[test]
    fn schedules_over_a_three_node_fleet() {
        let trace = SynthTraceConfig {
            n_functions: 16,
            duration_min: 120,
            ..SynthTraceConfig::small(7)
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(250.0, 180);
        let fleet = skus::fleet_three_generations();
        let mut eco = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
        let m = Simulation::new(&trace, &ci, fleet.clone()).run(&mut eco);
        assert_eq!(m.invocations(), trace.len());
        // Every placement names a real fleet node.
        assert!(m.records.iter().all(|r| fleet.contains(r.exec_location)));
        assert!(m.warm_starts() > 0);
    }

    #[test]
    fn single_node_fleet_schedules_the_period_axis_alone() {
        let trace = small_trace();
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        let solo = skus::fleet_of(&[skus::Sku::M5znMetal]);
        let mut eco = EcoLife::new(solo.clone(), EcoLifeConfig::default());
        let m = Simulation::new(&trace, &ci, solo).run(&mut eco);
        assert_eq!(m.invocations(), trace.len());
        assert!(m.records.iter().all(|r| r.exec_location == NodeId(0)));
        assert!(m.warm_starts() > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = small_trace();
        let ci = CarbonIntensityTrace::synthetic(ecolife_carbon::Region::Caiso, 120, 3);
        let run = || {
            let mut eco = EcoLife::new(skus::pair_a(), EcoLifeConfig::default());
            Simulation::new(&trace, &ci, skus::pair_a()).run(&mut eco)
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn ablation_configs_still_run() {
        let trace = small_trace();
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        for cfg in [
            EcoLifeConfig::default().without_dynamic_pso(),
            EcoLifeConfig::default().without_warm_pool_adjustment(),
        ] {
            let mut eco = EcoLife::new(skus::pair_a(), cfg);
            let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut eco);
            assert_eq!(m.invocations(), trace.len());
        }
    }

    #[test]
    fn warm_pool_adjustment_reduces_evictions_under_pressure() {
        // Tiny pools: without adjustment, overflows drop keep-alives;
        // with adjustment, containers are ranked/transferred instead.
        let trace = SynthTraceConfig {
            n_functions: 24,
            duration_min: 90,
            ..SynthTraceConfig::small(23)
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        // Pools sized so that ranking matters: large enough to hold the
        // valuable part of the working set, small enough to overflow.
        let pair = skus::pair_a().with_keepalive_budgets_mib(6 * 1024, 6 * 1024);

        let mut with = EcoLife::new(pair.clone(), EcoLifeConfig::default());
        let m_with = Simulation::new(&trace, &ci, pair.clone()).run(&mut with);
        let mut without = EcoLife::new(
            pair.clone(),
            EcoLifeConfig::default().without_warm_pool_adjustment(),
        );
        let m_without = Simulation::new(&trace, &ci, pair).run(&mut without);

        // The adjustment must engage (cross-pool transfers), cut the
        // number of functions dropped from the warm pools, and not pay
        // for it in service time or more than marginal keep-alive carbon
        // (it deliberately keeps more containers warm).
        assert!(m_with.transfers > 0, "adjustment never engaged");
        assert!(
            m_with.evicted_functions < m_without.evicted_functions,
            "adjustment did not reduce evictions: {} vs {}",
            m_with.evicted_functions,
            m_without.evicted_functions
        );
        assert!(
            m_with.total_service_ms() as f64 <= 1.02 * m_without.total_service_ms() as f64,
            "adjustment degraded service: {} vs {}",
            m_with.total_service_ms(),
            m_without.total_service_ms()
        );
        assert!(
            m_with.total_carbon_g() <= 1.05 * m_without.total_carbon_g(),
            "adjustment degraded carbon badly"
        );
    }
}

//! Table I — multi-generation hardware pair examples.
//!
//! Prints the pair catalog with the calibrated embodied-carbon and power
//! attributions, then times pair construction (a pure-data operation the
//! experiment harness performs constantly).

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_hw::skus;
use std::hint::black_box;

fn print_table1() {
    println!("\n=== Table I: Multi-generation Hardware Pairs ===");
    println!(
        "{:<7} {:<5} {:<28} {:>5} {:>6} {:>9} {:>11} {:<14} {:>10}",
        "Pair",
        "Role",
        "CPU (year)",
        "cores",
        "act W",
        "idle W/c",
        "CPU EC kg",
        "DRAM (year)",
        "EC g/GiB"
    );
    for pair in skus::all_pairs() {
        for node in [&pair.old, &pair.new] {
            println!(
                "{:<7} {:<5} {:<28} {:>5} {:>6.0} {:>9.1} {:>11.0} {:<14} {:>10.0}",
                pair.id.to_string(),
                node.generation.to_string(),
                format!("{} ({})", node.cpu.name, node.cpu.year),
                node.cpu.cores,
                node.cpu.active_power_w,
                node.cpu.idle_core_power_w,
                node.cpu.embodied_g / 1000.0,
                format!("{} ({})", node.dram.name, node.dram.year),
                node.dram.embodied_per_gib_g(),
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table1();
    c.bench_function("table1/pair_construction", |b| {
        b.iter(|| black_box(skus::all_pairs()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

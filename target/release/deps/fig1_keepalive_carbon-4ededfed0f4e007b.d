/root/repo/target/release/deps/fig1_keepalive_carbon-4ededfed0f4e007b.d: crates/bench/benches/fig1_keepalive_carbon.rs Cargo.toml

/root/repo/target/release/deps/libfig1_keepalive_carbon-4ededfed0f4e007b.rmeta: crates/bench/benches/fig1_keepalive_carbon.rs Cargo.toml

crates/bench/benches/fig1_keepalive_carbon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Online fleet membership: nodes joining and leaving mid-trace.
//!
//! A [`MembershipPlan`] is a time-sorted list of maintenance/autoscale
//! events the engine applies while replaying. A **leave** drains the
//! node's warm pool through the priced migration ranking (each
//! container settles its stay on the leaving node, pays the configured
//! [`TransferCost`](ecolife_carbon::TransferCost), and restarts on the
//! cleanest active node with room — or is evicted), then marks the node
//! inactive: no keep-alive or transfer lands there until it rejoins.
//! Execution routing is untouched — leaving is a warm-pool drain, not a
//! capacity change for running invocations.
//!
//! The plan is applied identically by the sequential and sharded
//! engines (each shard replays the same timeline against its own
//! cluster slice), so membership keeps the stream/bit-identity
//! guarantees of the rest of the engine.

use ecolife_hw::NodeId;

/// One membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// When the change takes effect (ms). Events after the trace
    /// horizon never fire.
    pub t_ms: u64,
    pub node: NodeId,
    /// `true` = the node (re)joins; `false` = it leaves and its pool
    /// drains.
    pub join: bool,
}

/// A time-sorted membership timeline. Empty by default — the engine
/// with an empty plan is exactly the fixed-fleet engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// Build a plan; events are sorted by `(t_ms, node, join)` so the
    /// replay order is total regardless of construction order (at equal
    /// times a leave applies before a join).
    pub fn new(mut events: Vec<MembershipEvent>) -> Self {
        events.sort_by_key(|e| (e.t_ms, e.node.0, e.join));
        MembershipPlan { events }
    }

    /// Append a leave at `t_ms` (builder style).
    pub fn leave(mut self, t_ms: u64, node: impl Into<NodeId>) -> Self {
        self.events.push(MembershipEvent {
            t_ms,
            node: node.into(),
            join: false,
        });
        Self::new(self.events)
    }

    /// Append a (re)join at `t_ms` (builder style).
    pub fn join(mut self, t_ms: u64, node: impl Into<NodeId>) -> Self {
        self.events.push(MembershipEvent {
            t_ms,
            node: node.into(),
            join: true,
        });
        Self::new(self.events)
    }

    /// The timeline, in replay order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_time_then_node() {
        let plan = MembershipPlan::default()
            .join(5_000, NodeId(2))
            .leave(1_000, NodeId(3))
            .leave(5_000, NodeId(1));
        let times: Vec<(u64, u32, bool)> = plan
            .events()
            .iter()
            .map(|e| (e.t_ms, e.node.0, e.join))
            .collect();
        assert_eq!(
            times,
            vec![(1_000, 3, false), (5_000, 1, false), (5_000, 2, true)]
        );
    }

    #[test]
    fn leave_sorts_before_join_at_equal_time_and_node() {
        let plan = MembershipPlan::default()
            .join(1_000, NodeId(0))
            .leave(1_000, NodeId(0));
        assert!(!plan.events()[0].join);
        assert!(plan.events()[1].join);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }
}

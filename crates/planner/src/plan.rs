//! The planner's genome: one candidate fleet composition.

use ecolife_hw::{skus, Fleet, Sku};

/// One point of the capacity-planning search space: how many nodes of
/// each catalog SKU to provision, and the uniform per-node keep-alive
/// memory budget to configure them with.
///
/// The genome is pure integers (`counts` are per-SKU node counts in the
/// owning [`PlanSpace`](crate::PlanSpace)'s catalog order), which gives
/// every plan a stable [`genome_key`](FleetPlan::genome_key) — the memo
/// key that lets repeated candidates skip re-simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FleetPlan {
    /// Node count per catalog SKU, in catalog order.
    pub counts: Vec<u32>,
    /// Warm-pool memory budget applied to every provisioned node (MiB).
    pub mem_budget_mib: u64,
}

impl FleetPlan {
    /// Total provisioned nodes.
    pub fn total_nodes(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Materialize the plan against a SKU catalog: the concrete fleet the
    /// simulator evaluates, warm pools bounded by the plan's budget.
    /// Returns `None` for the empty plan (no nodes — nothing to
    /// simulate).
    pub fn materialize(&self, catalog: &[Sku]) -> Option<Fleet> {
        assert_eq!(
            self.counts.len(),
            catalog.len(),
            "plan has {} SKU counts for a catalog of {}",
            self.counts.len(),
            catalog.len()
        );
        if self.total_nodes() == 0 {
            return None;
        }
        let counts: Vec<(Sku, u32)> = catalog
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
            .collect();
        Some(skus::fleet_of_counts(&counts).with_uniform_keepalive_budget_mib(self.mem_budget_mib))
    }

    /// Embodied carbon of provisioning this plan (g CO2e): every node's
    /// full CPU + DRAM manufacturing footprint, before any of it is
    /// amortized against use. The fitness function charges the slice of
    /// this that the workload's span consumes over the hardware lifetime.
    pub fn provisioned_embodied_g(&self, catalog: &[Sku]) -> f64 {
        catalog
            .iter()
            .zip(&self.counts)
            .map(|(sku, &n)| n as f64 * sku.node_embodied_g())
            .sum()
    }

    /// A stable 64-bit key of the integer genome (FNV-1a over counts and
    /// budget) — the memo-cache key. Collisions are theoretically
    /// possible but the cache stores the genome alongside the score and
    /// verifies equality, so a collision costs a re-simulation, never a
    /// wrong answer.
    pub fn genome_key(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for &c in &self.counts {
            eat(c as u64);
        }
        eat(self.mem_budget_mib);
        h
    }

    /// Human-readable composition, e.g. `2×i3.metal + 1×m5zn.metal @ 8192 MiB`.
    pub fn describe(&self, catalog: &[Sku]) -> String {
        let parts: Vec<String> = catalog
            .iter()
            .zip(&self.counts)
            .filter(|(_, &n)| n > 0)
            .map(|(sku, &n)| format!("{n}×{sku}"))
            .collect();
        if parts.is_empty() {
            "∅ (no nodes)".to_string()
        } else {
            format!("{} @ {} MiB", parts.join(" + "), self.mem_budget_mib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::NodeId;

    fn catalog() -> Vec<Sku> {
        vec![Sku::I3Metal, Sku::M5znMetal]
    }

    #[test]
    fn materialize_builds_the_budgeted_fleet() {
        let plan = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 4_096,
        };
        let fleet = plan.materialize(&catalog()).unwrap();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.node(NodeId(0)).cpu.year, 2016);
        assert_eq!(fleet.node(NodeId(2)).cpu.year, 2020);
        assert!(fleet.iter().all(|n| n.keepalive_mem_mib == 4_096));
    }

    #[test]
    fn empty_plan_materializes_to_none() {
        let plan = FleetPlan {
            counts: vec![0, 0],
            mem_budget_mib: 4_096,
        };
        assert!(plan.materialize(&catalog()).is_none());
        assert_eq!(plan.total_nodes(), 0);
        assert_eq!(plan.describe(&catalog()), "∅ (no nodes)");
    }

    #[test]
    fn provisioned_embodied_scales_with_counts() {
        let one = FleetPlan {
            counts: vec![1, 0],
            mem_budget_mib: 1,
        };
        let two = FleetPlan {
            counts: vec![2, 0],
            mem_budget_mib: 1,
        };
        let cat = catalog();
        assert_eq!(
            one.provisioned_embodied_g(&cat),
            Sku::I3Metal.node_embodied_g()
        );
        assert_eq!(
            two.provisioned_embodied_g(&cat),
            2.0 * one.provisioned_embodied_g(&cat)
        );
    }

    #[test]
    fn genome_keys_distinguish_plans() {
        let a = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 4_096,
        };
        let b = FleetPlan {
            counts: vec![2, 1],
            mem_budget_mib: 4_096,
        };
        let c = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 8_192,
        };
        assert_eq!(a.genome_key(), a.clone().genome_key());
        assert_ne!(a.genome_key(), b.genome_key());
        assert_ne!(a.genome_key(), c.genome_key());
    }

    #[test]
    fn describe_lists_nonzero_skus() {
        let plan = FleetPlan {
            counts: vec![2, 1],
            mem_budget_mib: 8_192,
        };
        assert_eq!(
            plan.describe(&catalog()),
            "2×i3.metal + 1×m5zn.metal @ 8192 MiB"
        );
    }

    #[test]
    #[should_panic(expected = "SKU counts for a catalog")]
    fn materialize_rejects_catalog_mismatch() {
        let plan = FleetPlan {
            counts: vec![1],
            mem_budget_mib: 1,
        };
        plan.materialize(&[Sku::I3Metal, Sku::M5znMetal]);
    }
}

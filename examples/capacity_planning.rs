//! Capacity planning: how much warm-pool memory does the cluster need,
//! and what does EcoLife's warm-pool adjustment buy under pressure?
//!
//! Sweeps the keep-alive memory budget of both generations and reports
//! service time, carbon, evictions, and cross-generation transfers, with
//! and without the priority warm-pool adjustment (the paper's Fig. 11
//! methodology, used here as an operator-facing sizing tool).
//!
//! Run with: `cargo run --release --example capacity_planning`

use ecolife::core::runner::parallel_map;
use ecolife::prelude::*;

fn main() {
    let trace = SynthTraceConfig {
        n_functions: 40,
        duration_min: 360,
        seed: 77,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 400, 77);
    let total_mem: u64 = trace.catalog().iter().map(|(_, p)| p.memory_mib).sum();
    println!(
        "workload: {} functions, {} invocations, {:.1} GiB if everything were warm at once\n",
        trace.catalog().len(),
        trace.len(),
        total_mem as f64 / 1024.0
    );

    println!(
        "{:<10} {:<7} {:>13} {:>11} {:>9} {:>10} {:>10}",
        "pool GiB", "adjust", "service ms", "carbon g", "evicted", "transfers", "warm rate"
    );

    let budgets = [4u64, 8, 12, 16, 24];
    let jobs: Vec<(u64, bool)> = budgets
        .iter()
        .flat_map(|&b| [(b, true), (b, false)])
        .collect();
    let rows = parallel_map(jobs, |(gib, adjust)| {
        let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(gib * 1024);
        let config = if adjust {
            EcoLifeConfig::default()
        } else {
            EcoLifeConfig::default().without_warm_pool_adjustment()
        };
        let mut ecolife = EcoLife::new(fleet.clone(), config);
        let (s, _) = run_scheme(&trace, &ci, &fleet, &mut ecolife);
        (gib, adjust, s)
    });

    for (gib, adjust, s) in rows {
        println!(
            "{:<10} {:<7} {:>13} {:>11.2} {:>9} {:>10} {:>10.3}",
            format!("{gib}/{gib}"),
            if adjust { "yes" } else { "no" },
            s.total_service_ms,
            s.total_carbon_g,
            s.evicted_functions,
            s.transfers,
            s.warm_rate
        );
    }

    println!(
        "\nReading the sweep: once the pools hold the working set, more memory\n\
         stops helping; below that, the adjustment's priority eviction and\n\
         cross-generation transfers recover most of the lost warm starts."
    );
}

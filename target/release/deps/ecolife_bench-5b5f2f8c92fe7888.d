/root/repo/target/release/deps/ecolife_bench-5b5f2f8c92fe7888.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libecolife_bench-5b5f2f8c92fe7888.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libecolife_bench-5b5f2f8c92fe7888.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

//! Result rendering: turn [`RunSummary`]/[`Comparison`] rows into CSV or
//! Markdown, so experiment sweeps can be diffed, archived, and pasted
//! into papers without extra tooling (and without a serialization
//! dependency — both formats are trivial to emit by hand).

use crate::runner::{Comparison, RunSummary};

/// CSV header matching [`summary_csv_row`].
pub const SUMMARY_CSV_HEADER: &str = "name,invocations,total_service_ms,mean_service_ms,\
p95_service_ms,total_carbon_g,operational_g,embodied_g,keepalive_carbon_g,\
total_energy_kwh,warm_rate,evicted_functions,transfers";

/// One CSV row for a run summary (no trailing newline).
pub fn summary_csv_row(s: &RunSummary) -> String {
    format!(
        "{},{},{},{:.3},{},{:.6},{:.6},{:.6},{:.6},{:.9},{:.4},{},{}",
        csv_escape(&s.name),
        s.invocations,
        s.total_service_ms,
        s.mean_service_ms,
        s.p95_service_ms,
        s.total_carbon_g,
        s.operational_g,
        s.embodied_g,
        s.keepalive_carbon_g,
        s.total_energy_kwh,
        s.warm_rate,
        s.evicted_functions,
        s.transfers,
    )
}

/// Render a full CSV document for a set of summaries.
pub fn summaries_to_csv(rows: &[RunSummary]) -> String {
    let mut out = String::with_capacity(128 * (rows.len() + 1));
    out.push_str(SUMMARY_CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&summary_csv_row(r));
        out.push('\n');
    }
    out
}

/// Render the Fig. 4/7-style placement table as Markdown.
pub fn placements_to_markdown(placements: &[Comparison]) -> String {
    let mut out = String::from(
        "| scheme | service (% vs Service-Time-Opt) | carbon (% vs CO2-Opt) |\n\
         |---|---:|---:|\n",
    );
    for p in placements {
        out.push_str(&format!(
            "| {} | {:+.2} | {:+.2} |\n",
            p.name, p.service_increase_pct, p.carbon_increase_pct
        ));
    }
    out
}

/// Render summaries as a Markdown table (the headline columns).
pub fn summaries_to_markdown(rows: &[RunSummary]) -> String {
    let mut out = String::from(
        "| scheme | service (ms) | P95 (ms) | carbon (g) | warm rate | evicted |\n\
         |---|---:|---:|---:|---:|---:|\n",
    );
    for s in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.3} | {} |\n",
            s.name,
            s.total_service_ms,
            s.p95_service_ms,
            s.total_carbon_g,
            s.warm_rate,
            s.evicted_functions
        ));
    }
    out
}

/// Quote a CSV field when needed (commas, quotes, newlines).
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(name: &str) -> RunSummary {
        RunSummary {
            name: name.to_string(),
            invocations: 10,
            total_service_ms: 12_345,
            mean_service_ms: 1_234.5,
            p95_service_ms: 3_000,
            total_carbon_g: 1.25,
            operational_g: 1.0,
            embodied_g: 0.25,
            keepalive_carbon_g: 0.5,
            total_energy_kwh: 0.004,
            warm_rate: 0.8,
            evicted_functions: 2,
            transfers: 1,
            decision_overhead_fraction: 0.001,
        }
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let row = summary_csv_row(&summary("EcoLife"));
        assert_eq!(
            row.split(',').count(),
            SUMMARY_CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn csv_document_has_header_and_rows() {
        let doc = summaries_to_csv(&[summary("a"), summary("b")]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,"));
        assert!(lines[1].starts_with("a,"));
    }

    #[test]
    fn csv_escaping_quotes_commas() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        let row = summary_csv_row(&summary("x,y"));
        assert!(row.starts_with("\"x,y\","));
    }

    #[test]
    fn markdown_tables_render_every_row() {
        let md = summaries_to_markdown(&[summary("EcoLife"), summary("Oracle")]);
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("| EcoLife |"));
        assert!(md.contains("| Oracle |"));

        let placements = vec![
            Comparison {
                name: "EcoLife".into(),
                service_increase_pct: 9.5,
                carbon_increase_pct: 31.7,
            },
            Comparison {
                name: "Oracle".into(),
                service_increase_pct: 7.0,
                carbon_increase_pct: 19.4,
            },
        ];
        let md = placements_to_markdown(&placements);
        assert!(md.contains("| EcoLife | +9.50 | +31.70 |"));
    }
}

//! The cached decision hot path is an *optimization*, never a semantic
//! change: EcoLife with `ObjectiveTables` (the default) must replay
//! **byte-identically** to the uncached reference path
//! (`EcoLifeConfig::without_cached_tables`) — compared on the engines'
//! hash-chained telemetry streams ([`CaptureSink`] +
//! [`first_divergence`]), so every placement, displacement, gram, and
//! expiry is covered by a single chain-tip equality — on multi-region
//! fleets, under memory pressure (the memoized transfer ranking),
//! restricted to one node, sequentially and through `run_sharded` at
//! any worker-thread count.

use ecolife::prelude::*;
use ecolife::sim::ShardOptions;
use ecolife::telemetry::diff::first_divergence;

/// A multi-region workload: one hardware pair per grid region (ten
/// nodes, five grids), synthetic per-region CI feeds, 16 functions.
fn multi_region_setup() -> (Trace, CiBundle, Fleet) {
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 120,
        seed: 21,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let bundle = CiBundle::synthetic_all(150, 21);
    let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(16 * 1024);
    (trace, bundle, fleet)
}

fn cached(fleet: &Fleet) -> EcoLife {
    EcoLife::new(fleet.clone(), EcoLifeConfig::default())
}

fn uncached(fleet: &Fleet) -> EcoLife {
    EcoLife::new(
        fleet.clone(),
        EcoLifeConfig::default().without_cached_tables(),
    )
}

/// Byte-identical streams or a panic naming the first divergent event.
fn assert_same_stream(reference: &CaptureSink, candidate: &CaptureSink, what: &str) {
    if let Some(d) = first_divergence(&reference.lines(), &candidate.lines()) {
        panic!("{what}: streams diverged: {d:?}");
    }
    assert_eq!(candidate.tip(), reference.tip(), "{what}: chain tip");
}

#[test]
fn cached_tables_are_bit_identical_on_a_multi_region_fleet() {
    let (trace, bundle, fleet) = multi_region_setup();
    let run = |mut eco: EcoLife| {
        let mut sink = CaptureSink::default();
        Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .unwrap()
            .run_with_sink(&mut eco, &mut sink);
        sink
    };
    let fast = run(cached(&fleet));
    let reference = run(uncached(&fleet));
    assert_same_stream(
        &reference,
        &fast,
        "cached tables changed a decision on the multi-region fleet",
    );
}

#[test]
fn cached_tables_are_bit_identical_sharded_at_any_thread_count() {
    let (trace, bundle, fleet) = multi_region_setup();
    let sim = Simulation::try_new_regional(&trace, &bundle, fleet.clone()).unwrap();
    let mut sequential = CaptureSink::default();
    sim.run_with_sink(&mut cached(&fleet), &mut sequential);
    for threads in [1usize, 2, 4] {
        let run_sharded = |make: &dyn Fn() -> EcoLife| {
            let mut sink = CaptureSink::default();
            sim.run_sharded_with_sink(
                |_| make(),
                &ShardOptions::new(8).with_threads(threads),
                &mut sink,
            );
            sink
        };
        let fast = run_sharded(&|| cached(&fleet));
        let reference = run_sharded(&|| uncached(&fleet));
        assert_same_stream(
            &reference,
            &fast,
            &format!("cached vs uncached sharded at {threads} workers"),
        );
        assert_same_stream(
            &sequential,
            &fast,
            &format!("sharded vs sequential at {threads} workers"),
        );
    }
}

/// Memory pressure drives the overflow path — priority adjustment plus
/// the (memoized) transfer-target ranking — which must not change a
/// single displacement either.
#[test]
fn cached_tables_are_bit_identical_under_memory_pressure() {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 90,
        seed: 23,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 23);
    let fleet = Fleet::from(skus::pair_a()).with_uniform_keepalive_budget_mib(6 * 1024);
    let run = |mut eco: EcoLife| {
        let mut sink = CaptureSink::default();
        let m = Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(&mut eco, &mut sink);
        (m, sink)
    };
    let (_, fast) = run(cached(&fleet));
    let (reference_m, reference) = run(uncached(&fleet));
    assert!(
        reference_m.transfers > 0,
        "workload must exercise the overflow/transfer path"
    );
    assert_same_stream(&reference, &fast, "cached tables under memory pressure");
}

#[test]
fn cached_tables_are_bit_identical_when_restricted_to_one_node() {
    let trace = SynthTraceConfig::small(7).generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Texas, 120, 7);
    let fleet = skus::fleet_three_generations();
    for node in [NodeId(0), NodeId(1), NodeId(2)] {
        let run = |cfg: EcoLifeConfig| {
            let mut eco = EcoLife::new(fleet.clone(), cfg.restricted_to(node));
            let mut sink = CaptureSink::default();
            let m = Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(&mut eco, &mut sink);
            (m, sink)
        };
        let (fast_m, fast) = run(EcoLifeConfig::default());
        let (_, reference) = run(EcoLifeConfig::default().without_cached_tables());
        assert_same_stream(&reference, &fast, &format!("restricted-to-{node} runs"));
        assert!(fast_m.records.iter().all(|r| r.exec_location == node));
    }
}

/// The oracle's sharded future-knowledge precompute is a pure wall-clock
/// play: `prepare` must produce the same gaps (and therefore the same
/// decisions) as the sequential scan at any bucket/worker count.
#[test]
fn sharded_gap_precompute_leaves_oracle_decisions_unchanged() {
    let trace = SynthTraceConfig {
        n_functions: 12,
        duration_min: 90,
        seed: 31,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let sequential = trace.next_arrival_gaps();
    // Force the bucketed partition/merge path (the automatic entry point
    // would take the sequential fallback on a trace this small).
    for n_buckets in [1usize, 2, 4, 16] {
        assert_eq!(
            ecolife::sim::next_arrival_gaps_bucketed(&trace, n_buckets),
            sequential,
            "bucketed gaps diverged at {n_buckets} buckets"
        );
    }
    assert_eq!(ecolife::sim::next_arrival_gaps_parallel(&trace), sequential);
    // And end to end: the oracle's replay stream is deterministic across
    // prepares.
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 31);
    let fleet = skus::fleet_a();
    let run = || {
        let mut oracle = BruteForce::oracle(fleet.clone(), ci.clone());
        let mut sink = CaptureSink::default();
        Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(&mut oracle, &mut sink);
        sink
    };
    assert_same_stream(&run(), &run(), "oracle repeat runs");
}

/root/repo/target/debug/deps/fleet-610e182630154c17.d: tests/fleet.rs

/root/repo/target/debug/deps/fleet-610e182630154c17: tests/fleet.rs

tests/fleet.rs:

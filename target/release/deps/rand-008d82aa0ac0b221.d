/root/repo/target/release/deps/rand-008d82aa0ac0b221.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-008d82aa0ac0b221: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

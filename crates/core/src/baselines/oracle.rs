//! The infeasible brute-force baselines: `Oracle`, `CO2-Opt`,
//! `Service-Time-Opt`, and `Energy-Opt` (Sec. V).
//!
//! "These solutions utilize heterogeneous hardware and present the
//! theoretical upper bounds, which are computed via brute-forcing every
//! possible scheduling option for each function invocation." Concretely:
//! the baseline is granted the next-arrival gap of every invocation (from
//! the trace) and the full carbon-intensity series, and per invocation it
//! enumerates every (node, keep-alive) choice over the whole fleet,
//! scoring each with exact future knowledge:
//!
//! * the next invocation is warm iff the gap lands inside the keep-alive
//!   window;
//! * the keep-alive is charged for exactly `min(gap_after_service, k)`;
//! * `Oracle` minimizes the joint λs/λc objective, `CO2-Opt` raw grams,
//!   `Service-Time-Opt` raw milliseconds, `Energy-Opt` raw kWh.
//!
//! Under memory pressure the brute-force baselines also use the priority
//! warm-pool adjustment (they are upper bounds; handicapping them with
//! naive drops would flatter EcoLife).

use crate::objective::CostModel;
use crate::warmpool::priority_adjustment;
use ecolife_carbon::{CarbonIntensityTrace, CarbonModel, CiBundle, CiError};
use ecolife_hw::{Fleet, NodeId};
use ecolife_sim::{
    Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx, Scheduler, MINUTE_MS,
};
use ecolife_trace::{Trace, WorkloadCatalog};

/// What a brute-force baseline minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptTarget {
    /// λs/λc joint objective — the `Oracle`.
    Joint,
    /// Total carbon (g) — `CO2-Opt`.
    Carbon,
    /// Total service time (ms) — `Service-Time-Opt`.
    ServiceTime,
    /// Total energy (kWh) — `Energy-Opt`.
    Energy,
}

/// A brute-force baseline scheduler.
pub struct BruteForce {
    target: OptTarget,
    cost: CostModel,
    /// The CI series each fleet node reads, indexed by `NodeId`: clones
    /// of one shared series in the paper's single-region setup, or each
    /// node's own region series on a multi-region fleet
    /// ([`BruteForce::with_ci_bundle`]).
    ci: Vec<CarbonIntensityTrace>,
    grid_min: Vec<u64>,
    /// Next-arrival gap per invocation index (filled in `prepare`).
    gaps: Vec<Option<u64>>,
    catalog: WorkloadCatalog,
    /// The node set enumerated per decision: the whole fleet, or the
    /// restricted node.
    locations: Vec<NodeId>,
}

impl BruteForce {
    pub fn new(
        target: OptTarget,
        fleet: impl Into<Fleet>,
        ci: CarbonIntensityTrace,
        grid_min: Vec<u64>,
    ) -> Self {
        assert!(grid_min.len() >= 2 && grid_min[0] == 0);
        let fleet = fleet.into();
        let locations: Vec<NodeId> = fleet.ids().collect();
        let ci = vec![ci; fleet.len()];
        let max_k_ms = *grid_min.last().unwrap() * MINUTE_MS;
        let cost = CostModel::new(
            fleet,
            CarbonModel::default(),
            0.5,
            0.5,
            ecolife_sim::SimConfig::default().setup_delay_ms,
            max_k_ms,
        );
        BruteForce {
            target,
            cost,
            ci,
            grid_min,
            gaps: Vec::new(),
            catalog: WorkloadCatalog::default(),
            locations,
        }
    }

    /// Re-resolve the per-node CI series from a region-keyed bundle —
    /// the multi-region form of the future CI knowledge the brute force
    /// is granted. Fails when a fleet node's region has no series.
    pub fn with_ci_bundle(mut self, bundle: &CiBundle) -> Result<Self, CiError> {
        let mut ci = Vec::with_capacity(self.cost.fleet().len());
        for node in self.cost.fleet().iter() {
            let series = bundle.get(node.region).ok_or(CiError::MissingRegion {
                node: node.id,
                region: node.region,
            })?;
            ci.push(series.clone());
        }
        self.ci = ci;
        Ok(self)
    }

    /// The series node `l` reads.
    #[inline]
    fn ci_of(&self, l: NodeId) -> &CarbonIntensityTrace {
        &self.ci[l.index()]
    }

    /// Intensity at `t` on every node's grid.
    fn ci_now_by_node(&self, t_ms: u64) -> Vec<f64> {
        self.ci.iter().map(|s| s.at(t_ms)).collect()
    }

    /// Use a non-default carbon model (robustness studies).
    pub fn with_carbon_model(mut self, carbon: CarbonModel) -> Self {
        let fleet = self.cost.fleet().clone();
        let max_k_ms = *self.grid_min.last().unwrap() * MINUTE_MS;
        self.cost = CostModel::new(
            fleet,
            carbon,
            0.5,
            0.5,
            ecolife_sim::SimConfig::default().setup_delay_ms,
            max_k_ms,
        );
        self
    }

    /// Restrict to one fleet node (used for sanity experiments).
    pub fn restricted_to(mut self, node: impl Into<NodeId>) -> Self {
        let node = node.into();
        assert!(
            self.cost.fleet().contains(node),
            "restricted to {node:?}, which the fleet does not contain"
        );
        self.locations = vec![node];
        self
    }

    /// The Oracle with the default 0–10-minute grid.
    pub fn oracle(fleet: impl Into<Fleet>, ci: CarbonIntensityTrace) -> Self {
        Self::new(OptTarget::Joint, fleet, ci, (0..=10).collect())
    }

    pub fn co2_opt(fleet: impl Into<Fleet>, ci: CarbonIntensityTrace) -> Self {
        Self::new(OptTarget::Carbon, fleet, ci, (0..=10).collect())
    }

    pub fn service_time_opt(fleet: impl Into<Fleet>, ci: CarbonIntensityTrace) -> Self {
        Self::new(OptTarget::ServiceTime, fleet, ci, (0..=10).collect())
    }

    pub fn energy_opt(fleet: impl Into<Fleet>, ci: CarbonIntensityTrace) -> Self {
        Self::new(OptTarget::Energy, fleet, ci, (0..=10).collect())
    }

    /// The cold-execution placement rule of this target at time `t_ms`:
    /// the first score-minimizing node in id order, each node's carbon
    /// priced at its own grid's intensity.
    fn cold_choice(&self, f: &ecolife_trace::FunctionProfile, t_ms: u64) -> NodeId {
        self.cold_choice_with(f, &self.ci_now_by_node(t_ms))
    }

    /// [`BruteForce::cold_choice`] against a precomputed per-node CI
    /// snapshot (`decide` reuses one snapshot across its whole
    /// node×keep-alive grid).
    fn cold_choice_with(&self, f: &ecolife_trace::FunctionProfile, ci_by_node: &[f64]) -> NodeId {
        let score = |r: NodeId| -> f64 {
            match self.target {
                OptTarget::Joint => self.cost.epdm_score(r, f, ci_by_node),
                OptTarget::Carbon => self.cost.cold_service_carbon_g(r, f, ci_by_node[r.index()]),
                OptTarget::ServiceTime => self.cost.cold_service_ms(r, f) as f64,
                OptTarget::Energy => self.cost.service_energy_kwh(r, f, false),
            }
        };
        *self
            .locations
            .iter()
            .min_by(|a, b| score(**a).partial_cmp(&score(**b)).unwrap())
            .expect("non-empty location set")
    }

    /// Score a keep-alive option with exact future knowledge.
    ///
    /// `service_end` is when the container would become warm; `gap` the
    /// exact time to this function's next arrival (from the current
    /// arrival), `None` for the last occurrence. `ci_by_node` is the
    /// per-node CI snapshot at `ctx.t_ms` and `cold_next` the
    /// placement-rule choice at the next arrival — both constant across
    /// one `decide`'s whole (node, period) grid, so the caller computes
    /// them once.
    #[allow(clippy::too_many_arguments)]
    fn keepalive_score(
        &self,
        ctx: &InvocationCtx<'_>,
        service_end: u64,
        gap: Option<u64>,
        ci_by_node: &[f64],
        cold_next: Option<NodeId>,
        l: NodeId,
        k_ms: u64,
    ) -> f64 {
        let f = ctx.profile;
        // How long would the container actually sit warm?
        let (resident_ms, warm_next) = match gap {
            None => (k_ms, false),
            Some(g) => {
                let next_t = ctx.t_ms + g;
                if next_t < service_end {
                    // Next arrival lands during our own service: the
                    // container is not warm yet, the start is cold, and
                    // the keep-alive then runs its full course.
                    (k_ms, false)
                } else {
                    let gap_from_end = next_t - service_end;
                    if k_ms > 0 && gap_from_end < k_ms {
                        (gap_from_end, true)
                    } else {
                        (k_ms, false)
                    }
                }
            }
        };

        // Keep-alive carbon accrues on the hosting node's grid.
        let ci_ka = if resident_ms > 0 {
            self.ci_of(l)
                .average_over(service_end, service_end + resident_ms)
        } else {
            self.ci_of(l).at(ctx.t_ms)
        };

        let kc_g = self.cost.keepalive_carbon_g(l, f, resident_ms, ci_ka);
        let ka_energy = self.cost.keepalive_energy_kwh(l, f, resident_ms);

        // Next invocation's service under this choice, priced on the
        // grid of the node it would actually run on.
        let (s_next_ms, sc_next_g, e_next_kwh) = match gap {
            None => (0.0, 0.0, 0.0),
            Some(g) if warm_next => {
                let next_t = ctx.t_ms + g;
                (
                    self.cost.warm_service_ms(l, f) as f64,
                    self.cost
                        .warm_service_carbon_g(l, f, self.ci_of(l).at(next_t)),
                    self.cost.service_energy_kwh(l, f, true),
                )
            }
            Some(g) => {
                // Cold next start: it will execute wherever this
                // target's placement rule puts it at that instant.
                let next_t = ctx.t_ms + g;
                let r = cold_next.expect("cold_next precomputed whenever a gap exists");
                (
                    self.cost.cold_service_ms(r, f) as f64,
                    self.cost
                        .cold_service_carbon_g(r, f, self.ci_of(r).at(next_t)),
                    self.cost.service_energy_kwh(r, f, false),
                )
            }
        };

        match self.target {
            OptTarget::Joint => {
                self.cost.lambda_s * s_next_ms / self.cost.s_max(f)
                    + self.cost.lambda_c * sc_next_g / self.cost.sc_max(f, ci_by_node)
                    + self.cost.lambda_c * kc_g / self.cost.kc_max(f, ci_by_node)
            }
            OptTarget::Carbon => sc_next_g + kc_g,
            OptTarget::ServiceTime => {
                // Pure service time, with an infinitesimal carbon
                // tie-break so equal-service options don't burn pool
                // memory arbitrarily.
                s_next_ms + 1e-9 * (sc_next_g + kc_g)
            }
            OptTarget::Energy => e_next_kwh + ka_energy,
        }
    }
}

impl Scheduler for BruteForce {
    fn name(&self) -> &'static str {
        match self.target {
            OptTarget::Joint => "Oracle",
            OptTarget::Carbon => "CO2-Opt",
            OptTarget::ServiceTime => "Service-Time-Opt",
            OptTarget::Energy => "Energy-Opt",
        }
    }

    fn prepare(&mut self, trace: &Trace) {
        // The brute force is granted the *whole* future CI series; a
        // series that runs out mid-trace would silently degrade its
        // knowledge to a frozen last sample — the same failure mode the
        // engine rejects at construction, so reject it here too.
        for (node, series) in self.cost.fleet().ids().zip(&self.ci) {
            assert!(
                trace.is_empty() || series.len_ms() > trace.horizon_ms(),
                "{}: CI series for node {node} ({}) covers {} ms but the trace spans {} ms; \
                 extend the series (e.g. extend_cyclic) or trim the workload",
                self.name(),
                self.cost.fleet().node(node).region,
                series.len_ms(),
                trace.horizon_ms() + 1,
            );
        }
        // Sharded precompute: per-function gap chains are merged from
        // function-bucket scans fanned out over `parallel_map` —
        // bit-identical to `trace.next_arrival_gaps()` at any worker
        // count, and the difference between a stutter and a stall when
        // `prepare` faces a 10⁷-invocation trace.
        self.gaps = ecolife_sim::next_arrival_gaps_parallel(trace);
        self.catalog = trace.catalog().clone();
    }

    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        // Constants of this decision, shared across the whole
        // (node, period) grid below.
        let ci_by_node = self.ci_now_by_node(ctx.t_ms);
        let exec = self.cold_choice_with(ctx.profile, &ci_by_node);
        let gap = self.gaps.get(ctx.index).copied().flatten();
        let cold_next = gap.map(|g| self.cold_choice(ctx.profile, ctx.t_ms + g));

        // Exact service duration of *this* invocation (mirrors the
        // engine's computation) to anchor the keep-alive window.
        let service_ms = match ctx.warm_at {
            Some(l) => self.cost.warm_service_ms(l, ctx.profile),
            None => self.cost.cold_service_ms(exec, ctx.profile),
        };
        let service_end = ctx.t_ms + service_ms;

        // Brute-force every (node, period) choice.
        let mut best: Option<(f64, NodeId, u64)> = None;
        for &l in &self.locations {
            for &k_min in &self.grid_min {
                let k_ms = k_min * MINUTE_MS;
                let score =
                    self.keepalive_score(ctx, service_end, gap, &ci_by_node, cold_next, l, k_ms);
                if best.map(|(s, _, _)| score < s).unwrap_or(true) {
                    best = Some((score, l, k_ms));
                }
            }
        }
        let (_, ka_loc, ka_ms) = best.expect("non-empty choice grid");

        Decision {
            exec,
            keepalive: (ka_ms > 0).then_some(KeepAliveChoice {
                location: ka_loc,
                duration_ms: ka_ms,
            }),
        }
    }

    fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
        let mut plan = priority_adjustment(&self.cost, &self.catalog, ctx);
        if self.locations.len() < self.cost.fleet().len() {
            // A restricted baseline never spills onto nodes outside its
            // allowed set.
            plan.transfer_targets = Some(
                self.locations
                    .iter()
                    .copied()
                    .filter(|&l| l != ctx.location)
                    .collect(),
            );
        }
        OverflowAction::Adjust(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_sim::Simulation;
    use ecolife_trace::{FunctionId, Invocation, SynthTraceConfig};

    use ecolife_hw::{skus, Generation};

    fn trace() -> Trace {
        SynthTraceConfig {
            n_functions: 12,
            duration_min: 90,
            ..SynthTraceConfig::small(21)
        }
        .generate(&WorkloadCatalog::sebs())
    }

    fn ci() -> CarbonIntensityTrace {
        CarbonIntensityTrace::synthetic(ecolife_carbon::Region::Caiso, 180, 5)
    }

    fn run(target: OptTarget, trace: &Trace, ci: &CarbonIntensityTrace) -> ecolife_sim::RunMetrics {
        let fleet = skus::fleet_a();
        let mut s = BruteForce::new(target, fleet.clone(), ci.clone(), (0..=10).collect());
        Simulation::new(trace, ci, fleet).run(&mut s)
    }

    #[test]
    fn names() {
        let fleet = skus::fleet_a();
        let c = CarbonIntensityTrace::constant(100.0, 10);
        assert_eq!(
            BruteForce::oracle(fleet.clone(), c.clone()).name(),
            "Oracle"
        );
        assert_eq!(
            BruteForce::co2_opt(fleet.clone(), c.clone()).name(),
            "CO2-Opt"
        );
        assert_eq!(
            BruteForce::service_time_opt(fleet.clone(), c.clone()).name(),
            "Service-Time-Opt"
        );
        assert_eq!(BruteForce::energy_opt(fleet, c).name(), "Energy-Opt");
    }

    #[test]
    fn service_time_opt_dominates_service_time() {
        let t = trace();
        let c = ci();
        let st = run(OptTarget::ServiceTime, &t, &c);
        for target in [OptTarget::Joint, OptTarget::Carbon, OptTarget::Energy] {
            let other = run(target, &t, &c);
            assert!(
                st.total_service_ms() <= other.total_service_ms(),
                "{target:?} beat Service-Time-Opt on service time"
            );
        }
    }

    #[test]
    fn co2_opt_dominates_carbon() {
        let t = trace();
        let c = ci();
        let co2 = run(OptTarget::Carbon, &t, &c);
        for target in [OptTarget::Joint, OptTarget::ServiceTime, OptTarget::Energy] {
            let other = run(target, &t, &c);
            assert!(
                co2.total_carbon_g() <= other.total_carbon_g() * 1.001,
                "{target:?} beat CO2-Opt on carbon: {} vs {}",
                other.total_carbon_g(),
                co2.total_carbon_g()
            );
        }
    }

    #[test]
    fn oracle_sits_between_the_single_objective_opts() {
        let t = trace();
        let c = ci();
        let oracle = run(OptTarget::Joint, &t, &c);
        let st = run(OptTarget::ServiceTime, &t, &c);
        let co2 = run(OptTarget::Carbon, &t, &c);
        assert!(oracle.total_service_ms() >= st.total_service_ms());
        assert!(oracle.total_carbon_g() >= co2.total_carbon_g() * 0.999);
    }

    #[test]
    fn energy_opt_is_not_carbon_opt() {
        // Fig. 4's point: Energy-Opt overlooks embodied carbon and CI
        // variation, landing away from CO2-Opt.
        let t = trace();
        let c = ci();
        let energy = run(OptTarget::Energy, &t, &c);
        let co2 = run(OptTarget::Carbon, &t, &c);
        assert!(energy.total_carbon_g() >= co2.total_carbon_g());
        assert!(energy.total_energy_kwh() <= co2.total_energy_kwh() * 1.001);
    }

    #[test]
    fn oracle_converts_known_regular_arrivals_into_warm_starts() {
        let catalog = WorkloadCatalog::sebs();
        let (vid, _) = catalog.by_name("220.video-processing").unwrap();
        let invocations: Vec<Invocation> = (0..20)
            .map(|i| Invocation {
                func: vid,
                t_ms: i * 3 * MINUTE_MS,
            })
            .collect();
        let t = Trace::new(catalog, invocations);
        let c = CarbonIntensityTrace::constant(300.0, 120);
        let m = run(OptTarget::Joint, &t, &c);
        // Every re-invocation (19 of 20) must be warm: the oracle knows
        // the 3-minute gap and the grid offers 3+ minutes.
        assert_eq!(m.warm_starts(), 19);
    }

    #[test]
    fn last_invocation_gets_no_keepalive_from_carbon_opt() {
        // With no future arrival, any keep-alive is pure carbon waste —
        // CO2-Opt must choose none.
        let catalog = WorkloadCatalog::sebs();
        let (vid, _) = catalog.by_name("220.video-processing").unwrap();
        let t = Trace::new(catalog, vec![Invocation { func: vid, t_ms: 0 }]);
        let c = CarbonIntensityTrace::constant(300.0, 60);
        let m = run(OptTarget::Carbon, &t, &c);
        assert_eq!(m.total_keepalive_carbon_g(), 0.0);
    }

    #[test]
    #[should_panic(expected = "extend the series")]
    fn oracle_rejects_ci_shorter_than_its_trace() {
        // The brute force's future CI knowledge must cover the trace:
        // a short series would silently clamp to its last sample.
        let catalog = WorkloadCatalog::sebs();
        let (vid, _) = catalog.by_name("220.video-processing").unwrap();
        let t = Trace::new(
            catalog,
            vec![Invocation {
                func: vid,
                t_ms: 120 * MINUTE_MS,
            }],
        );
        let short = CarbonIntensityTrace::constant(300.0, 60);
        let mut s = BruteForce::oracle(skus::fleet_a(), short);
        s.prepare(&t);
    }

    #[test]
    fn restriction_is_respected() {
        let t = trace();
        let c = ci();
        let fleet = skus::fleet_a();
        let mut s = BruteForce::oracle(fleet.clone(), c.clone()).restricted_to(Generation::Old);
        let m = Simulation::new(&t, &c, fleet).run(&mut s);
        assert!(m
            .records
            .iter()
            .all(|r| r.exec_location == NodeId::from(Generation::Old)));
    }

    #[test]
    fn three_node_oracle_uses_the_mid_node_when_it_wins() {
        // Regular 4-minute drumbeat on the three-generation fleet: the
        // oracle enumerates all three nodes and must keep every
        // re-invocation warm somewhere.
        let catalog = WorkloadCatalog::sebs();
        let (vid, _) = catalog.by_name("503.graph-bfs").unwrap();
        let invocations: Vec<Invocation> = (0..20)
            .map(|i| Invocation {
                func: vid,
                t_ms: i * 4 * MINUTE_MS,
            })
            .collect();
        let t = Trace::new(catalog, invocations);
        let c = CarbonIntensityTrace::constant(300.0, 120);
        let fleet = skus::fleet_three_generations();
        let mut s = BruteForce::oracle(fleet.clone(), c.clone());
        let m = Simulation::new(&t, &c, fleet.clone()).run(&mut s);
        assert_eq!(m.warm_starts(), 19);
        assert!(m.records.iter().all(|r| fleet.contains(r.exec_location)));
    }

    #[test]
    fn gap_indexing_matches_trace_positions() {
        // Two interleaved functions: gaps must be per-function, not global.
        let catalog = WorkloadCatalog::sebs();
        let a = FunctionId(0);
        let b = FunctionId(1);
        let t = Trace::new(
            catalog,
            vec![
                Invocation { func: a, t_ms: 0 },
                Invocation {
                    func: b,
                    t_ms: 1_000,
                },
                Invocation {
                    func: a,
                    t_ms: 4 * MINUTE_MS,
                },
            ],
        );
        let c = CarbonIntensityTrace::constant(300.0, 60);
        let m = run(OptTarget::Joint, &t, &c);
        // Function a's second start must be warm (gap 4 min ≤ 10-min max).
        assert!(m.records[2].warm);
    }
}

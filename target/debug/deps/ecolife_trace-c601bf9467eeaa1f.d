/root/repo/target/debug/deps/ecolife_trace-c601bf9467eeaa1f.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/ecolife_trace-c601bf9467eeaa1f: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

/root/repo/target/release/deps/fig10_dpso_ablation-f911c97c3cb59e03.d: crates/bench/benches/fig10_dpso_ablation.rs

/root/repo/target/release/deps/fig10_dpso_ablation-f911c97c3cb59e03: crates/bench/benches/fig10_dpso_ablation.rs

crates/bench/benches/fig10_dpso_ablation.rs:

//! The plan search space: which fleets the planner is allowed to buy —
//! and, on a multi-region space, *where* it is allowed to deploy them.

use crate::plan::FleetPlan;
use ecolife_hw::{skus, Fleet, Region, Sku};
use ecolife_pso::{decode, SearchSpace};

/// Bounds of the capacity-planning search: a SKU catalog, the regions
/// nodes may be deployed in, a per-offering and a total node-count cap,
/// and a discrete grid of per-node warm-pool memory budgets.
///
/// An *offering* is one `(SKU, region)` combination; the genome is
/// `catalog.len() × regions.len() + 1` integers — one count per
/// offering (SKU-major: all regions of SKU 0, then SKU 1, …) plus a
/// budget index — exposed to the continuous optimizers as a
/// [`SearchSpace::grid`] box and decoded by nearest-index rounding, the
/// same relaxation the keep-alive space uses. The default space has one
/// region ([`Region::Caiso`]), making the genome exactly the historical
/// per-SKU counts; [`PlanSpace::with_regions`] opens the grid-mix axis,
/// where provisioning the same SKU in a cleaner region trades embodied
/// parity for lower operational carbon.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpace {
    catalog: Vec<Sku>,
    regions: Vec<Region>,
    max_per_sku: u32,
    max_nodes: u32,
    mem_budgets_mib: Vec<u64>,
}

impl PlanSpace {
    /// Build a plan space.
    ///
    /// # Panics
    /// Panics on an empty catalog or budget grid, duplicate catalog
    /// entries, a zero node cap, or a non-increasing budget grid.
    pub fn new(
        catalog: Vec<Sku>,
        max_per_sku: u32,
        max_nodes: u32,
        mem_budgets_mib: Vec<u64>,
    ) -> Self {
        assert!(!catalog.is_empty(), "plan space needs ≥1 SKU");
        for (i, a) in catalog.iter().enumerate() {
            assert!(
                !catalog[..i].contains(a),
                "duplicate catalog SKU {a}: counts would be ambiguous"
            );
        }
        assert!(max_per_sku >= 1, "per-SKU cap must allow ≥1 node");
        assert!(max_nodes >= 1, "fleet cap must allow ≥1 node");
        assert!(!mem_budgets_mib.is_empty(), "budget grid needs ≥1 entry");
        assert!(
            mem_budgets_mib.windows(2).all(|w| w[0] < w[1]),
            "budget grid must be strictly increasing"
        );
        assert!(
            mem_budgets_mib.iter().all(|&b| b > 0),
            "budgets must be positive"
        );
        PlanSpace {
            catalog,
            regions: vec![Region::Caiso],
            max_per_sku,
            max_nodes,
            mem_budgets_mib,
        }
    }

    /// Open the deployment-region axis: every catalog SKU may be
    /// provisioned in any of `regions` (the genome grows to one count
    /// per (SKU, region) offering; `max_per_sku` caps each offering).
    ///
    /// # Panics
    /// Panics on an empty or duplicated region list.
    pub fn with_regions(mut self, regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "plan space needs ≥1 region");
        for (i, r) in regions.iter().enumerate() {
            assert!(
                !regions[..i].contains(r),
                "duplicate region {r}: counts would be ambiguous"
            );
        }
        self.regions = regions;
        self
    }

    /// The default space: the full Table I SKU catalog, up to
    /// `max_per_sku` of each, and a 2/4/8/16-GiB budget grid.
    pub fn default_catalog(max_per_sku: u32, max_nodes: u32) -> Self {
        PlanSpace::new(
            ecolife_hw::skus::catalog(),
            max_per_sku,
            max_nodes,
            vec![2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024],
        )
    }

    /// The SKU catalog, in genome order.
    pub fn catalog(&self) -> &[Sku] {
        &self.catalog
    }

    /// The deployment regions, in genome order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The (SKU, region) offerings in genome order (SKU-major).
    pub fn offerings(&self) -> Vec<(Sku, Region)> {
        self.catalog
            .iter()
            .flat_map(|&sku| self.regions.iter().map(move |&r| (sku, r)))
            .collect()
    }

    /// Genome length excluding the budget axis: one count per offering.
    pub fn genome_len(&self) -> usize {
        self.catalog.len() * self.regions.len()
    }

    /// Materialize a feasible plan against this space: nodes expand in
    /// offering order, each tagged with its offering's region and
    /// bounded by the plan's warm-pool budget. `None` for the empty
    /// plan.
    ///
    /// # Panics
    /// Panics when the plan's genome length does not match this space.
    pub fn materialize(&self, plan: &FleetPlan) -> Option<Fleet> {
        assert_eq!(
            plan.counts.len(),
            self.genome_len(),
            "plan has {} offering counts for a space of {}",
            plan.counts.len(),
            self.genome_len()
        );
        if plan.total_nodes() == 0 {
            return None;
        }
        let placements: Vec<(Sku, Region)> = self
            .offerings()
            .into_iter()
            .zip(&plan.counts)
            .flat_map(|(offering, &n)| std::iter::repeat_n(offering, n as usize))
            .collect();
        Some(
            skus::fleet_of_in_regions(&placements)
                .with_uniform_keepalive_budget_mib(plan.mem_budget_mib),
        )
    }

    /// Embodied carbon of provisioning `plan` (g CO2e): region placement
    /// does not change a SKU's manufacturing footprint.
    pub fn provisioned_embodied_g(&self, plan: &FleetPlan) -> f64 {
        self.offerings()
            .iter()
            .zip(&plan.counts)
            .map(|((sku, _), &n)| n as f64 * sku.node_embodied_g())
            .sum()
    }

    /// Human-readable composition, region-qualified when the space spans
    /// several (e.g. `2×i3.metal@NY + 1×m5zn.metal@CAL @ 8192 MiB`;
    /// single-region: `2×i3.metal + 1×m5zn.metal @ 8192 MiB`).
    pub fn describe_plan(&self, plan: &FleetPlan) -> String {
        let multi = self.regions.len() > 1;
        let parts: Vec<String> = self
            .offerings()
            .iter()
            .zip(&plan.counts)
            .filter(|(_, &n)| n > 0)
            .map(|((sku, region), &n)| {
                if multi {
                    format!("{n}×{sku}@{region}")
                } else {
                    format!("{n}×{sku}")
                }
            })
            .collect();
        if parts.is_empty() {
            "∅ (no nodes)".to_string()
        } else {
            format!("{} @ {} MiB", parts.join(" + "), plan.mem_budget_mib)
        }
    }

    /// The memory-budget grid (MiB).
    pub fn mem_budgets_mib(&self) -> &[u64] {
        &self.mem_budgets_mib
    }

    /// Maximum nodes of any single SKU.
    pub fn max_per_sku(&self) -> u32 {
        self.max_per_sku
    }

    /// Maximum total fleet size.
    pub fn max_nodes(&self) -> u32 {
        self.max_nodes
    }

    /// The continuous box the optimizers search: one axis per SKU count
    /// (cardinality `max_per_sku + 1`: 0..=max) plus the budget-index
    /// axis.
    pub fn search_space(&self) -> SearchSpace {
        let mut cards: Vec<usize> = vec![self.max_per_sku as usize + 1; self.genome_len()];
        cards.push(self.mem_budgets_mib.len());
        SearchSpace::grid(&cards)
    }

    /// Decode an optimizer position into a plan (nearest-index per axis).
    /// Every position decodes; feasibility (non-empty, within the total
    /// node cap) is the fitness function's concern, so the optimizers can
    /// roam the full box and be steered back by graded penalties.
    pub fn decode(&self, x: &[f64]) -> FleetPlan {
        assert_eq!(
            x.len(),
            self.genome_len() + 1,
            "position has {} dims; plan space has {}",
            x.len(),
            self.genome_len() + 1
        );
        let counts: Vec<u32> = x[..self.genome_len()]
            .iter()
            .map(|&xi| decode::grid_index(xi, self.max_per_sku as usize + 1) as u32)
            .collect();
        let budget_idx = decode::grid_index(x[self.genome_len()], self.mem_budgets_mib.len());
        FleetPlan {
            counts,
            mem_budget_mib: self.mem_budgets_mib[budget_idx],
        }
    }

    /// How far outside this space a plan is: 0 = feasible; otherwise a
    /// graded count of the violations (missing/excess nodes, off-grid
    /// budget, malformed genome). The fitness function scales its
    /// infeasibility penalty by this, so optimizers roaming outside the
    /// caps are sloped back toward feasibility rather than hitting a
    /// cliff.
    pub fn violation(&self, plan: &FleetPlan) -> u64 {
        let mut v = 0u64;
        if plan.counts.len() != self.genome_len() {
            v += 1;
        }
        if !self.mem_budgets_mib.contains(&plan.mem_budget_mib) {
            v += 1;
        }
        let total = plan.total_nodes() as u64;
        if total == 0 {
            v += 1;
        }
        v += total.saturating_sub(self.max_nodes as u64);
        for &c in &plan.counts {
            v += (c as u64).saturating_sub(self.max_per_sku as u64);
        }
        v
    }

    /// Whether a plan is inside this space's caps and non-empty —
    /// exactly [`PlanSpace::violation`]` == 0`, so the two predicates
    /// cannot drift apart.
    pub fn is_feasible(&self, plan: &FleetPlan) -> bool {
        self.violation(plan) == 0
    }

    /// Every feasible plan, in deterministic lexicographic genome order —
    /// the exhaustive baseline for small spaces.
    pub fn enumerate(&self) -> Vec<FleetPlan> {
        let mut plans = Vec::new();
        let mut counts = vec![0u32; self.genome_len()];
        loop {
            let total: u32 = counts.iter().sum();
            if (1..=self.max_nodes).contains(&total) {
                for &budget in &self.mem_budgets_mib {
                    plans.push(FleetPlan {
                        counts: counts.clone(),
                        mem_budget_mib: budget,
                    });
                }
            }
            // Odometer increment over [0, max_per_sku]^n.
            let mut d = counts.len();
            loop {
                if d == 0 {
                    return plans;
                }
                d -= 1;
                if counts[d] < self.max_per_sku {
                    counts[d] += 1;
                    break;
                }
                counts[d] = 0;
            }
        }
    }

    /// Number of feasible plans ([`PlanSpace::enumerate`]'s length
    /// without materializing it).
    pub fn plan_count(&self) -> usize {
        // Count count-vectors with total in [1, max_nodes] by dynamic
        // programming over SKUs, then multiply by the budget grid.
        let cap = self.max_nodes as usize;
        let mut ways = vec![0u64; cap + 1];
        ways[0] = 1;
        for _ in 0..self.genome_len() {
            let mut next = vec![0u64; cap + 1];
            for (t, &w) in ways.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                for c in 0..=(self.max_per_sku as usize).min(cap - t) {
                    next[t + c] += w;
                }
            }
            ways = next;
        }
        let compositions: u64 = ways[1..].iter().sum();
        compositions as usize * self.mem_budgets_mib.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PlanSpace {
        PlanSpace::new(vec![Sku::I3Metal, Sku::M5znMetal], 2, 3, vec![2_048, 8_192])
    }

    #[test]
    fn search_space_matches_genome_shape() {
        let s = small().search_space();
        assert_eq!(s.dims(), 3);
        assert_eq!(s.bounds()[0], (0.0, 2.0));
        assert_eq!(s.bounds()[1], (0.0, 2.0));
        assert_eq!(s.bounds()[2], (0.0, 1.0));
    }

    #[test]
    fn decode_rounds_and_clamps() {
        let space = small();
        let plan = space.decode(&[0.4, 1.6, 0.9]);
        assert_eq!(plan.counts, vec![0, 2]);
        assert_eq!(plan.mem_budget_mib, 8_192);
        // Clamped at the box edge.
        let plan = space.decode(&[5.0, -1.0, 5.0]);
        assert_eq!(plan.counts, vec![2, 0]);
        assert_eq!(plan.mem_budget_mib, 8_192);
    }

    #[test]
    fn enumerate_is_exactly_the_feasible_set() {
        let space = small();
        let plans = space.enumerate();
        // Count vectors over {0,1,2}² with total in [1,3]: 9 − 1 (empty)
        // − 1 ((2,2) over cap) = 7; × 2 budgets = 14.
        assert_eq!(plans.len(), 14);
        assert_eq!(plans.len(), space.plan_count());
        assert!(plans.iter().all(|p| space.is_feasible(p)));
        // Deterministic order, no duplicates.
        let mut keys: Vec<u64> = plans.iter().map(|p| p.genome_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), plans.len());
        assert_eq!(space.enumerate(), plans);
    }

    #[test]
    fn feasibility_checks_caps() {
        let space = small();
        let ok = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 2_048,
        };
        assert!(space.is_feasible(&ok));
        let empty = FleetPlan {
            counts: vec![0, 0],
            mem_budget_mib: 2_048,
        };
        assert!(!space.is_feasible(&empty));
        let over_total = FleetPlan {
            counts: vec![2, 2],
            mem_budget_mib: 2_048,
        };
        assert!(!space.is_feasible(&over_total));
        let off_grid_budget = FleetPlan {
            counts: vec![1, 0],
            mem_budget_mib: 4_096,
        };
        assert!(!space.is_feasible(&off_grid_budget));
    }

    #[test]
    fn plan_count_handles_large_spaces_without_enumerating() {
        let space = PlanSpace::default_catalog(3, 8);
        assert_eq!(space.plan_count(), space.enumerate().len());
    }

    #[test]
    fn materialize_builds_the_budgeted_fleet() {
        use ecolife_hw::NodeId;
        let space = small();
        let plan = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 2_048,
        };
        let fleet = space.materialize(&plan).unwrap();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.node(NodeId(0)).cpu.year, 2016);
        assert_eq!(fleet.node(NodeId(2)).cpu.year, 2020);
        assert!(fleet.iter().all(|n| n.keepalive_mem_mib == 2_048));
        // Default space: every node lands in the paper's region.
        assert!(fleet.iter().all(|n| n.region == Region::Caiso));
        // Empty plans materialize to nothing.
        let empty = FleetPlan {
            counts: vec![0, 0],
            mem_budget_mib: 2_048,
        };
        assert!(space.materialize(&empty).is_none());
        assert_eq!(space.describe_plan(&empty), "∅ (no nodes)");
    }

    #[test]
    fn regional_space_expands_offerings() {
        use ecolife_hw::NodeId;
        let space = small().with_regions(vec![Region::Texas, Region::NewYork]);
        assert_eq!(space.genome_len(), 4);
        assert_eq!(space.search_space().dims(), 5);
        // SKU-major offering order: (i3, TEX), (i3, NY), (m5zn, TEX), (m5zn, NY).
        let plan = FleetPlan {
            counts: vec![0, 1, 1, 0],
            mem_budget_mib: 2_048,
        };
        assert!(space.is_feasible(&plan));
        let fleet = space.materialize(&plan).unwrap();
        assert_eq!(fleet.node(NodeId(0)).region, Region::NewYork);
        assert_eq!(fleet.node(NodeId(1)).region, Region::Texas);
        assert_eq!(
            space.describe_plan(&plan),
            "1×i3.metal@NY + 1×m5zn.metal@TEX @ 2048 MiB"
        );
        // Embodied carbon is region-independent.
        assert_eq!(
            space.provisioned_embodied_g(&plan),
            Sku::I3Metal.node_embodied_g() + Sku::M5znMetal.node_embodied_g()
        );
        // A single-region genome no longer fits this space.
        let short = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 2_048,
        };
        assert!(!space.is_feasible(&short));
    }

    #[test]
    fn describe_plan_single_region_omits_region_tags() {
        let space = small();
        let plan = FleetPlan {
            counts: vec![2, 1],
            mem_budget_mib: 8_192,
        };
        assert_eq!(
            space.describe_plan(&plan),
            "2×i3.metal + 1×m5zn.metal @ 8192 MiB"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate region")]
    fn rejects_duplicate_regions() {
        small().with_regions(vec![Region::Texas, Region::Texas]);
    }

    #[test]
    #[should_panic(expected = "duplicate catalog SKU")]
    fn rejects_duplicate_skus() {
        PlanSpace::new(vec![Sku::I3Metal, Sku::I3Metal], 1, 2, vec![1_024]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_budgets() {
        PlanSpace::new(vec![Sku::I3Metal], 1, 1, vec![2_048, 1_024]);
    }
}

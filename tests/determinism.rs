//! Cross-crate determinism: every stochastic component is seeded, so the
//! whole experiment pipeline must be bit-for-bit reproducible — the
//! two-node fleet built from a Table I pair must reproduce the pair
//! path's results exactly, and the sharded parallel replay must
//! reproduce the single-threaded path exactly, at any shard count and
//! any worker-thread count.

use ecolife::prelude::*;
use ecolife::sim::ShardOptions;

fn full_run(seed: u64) -> (Vec<u64>, Vec<String>) {
    let trace = SynthTraceConfig {
        n_functions: 12,
        duration_min: 90,
        seed,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Texas, 120, seed);
    let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(6 * 1024);
    let mut eco = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let (_, metrics) = run_scheme(&trace, &ci, &fleet, &mut eco);
    (
        metrics.records.iter().map(|r| r.service_ms).collect(),
        metrics
            .records
            .iter()
            .map(|r| format!("{}:{}:{}", r.func, r.exec_location, r.warm))
            .collect(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    assert_eq!(full_run(11), full_run(11));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(full_run(11), full_run(12));
}

#[test]
fn trace_and_ci_generation_are_independent_of_ambient_state() {
    // Re-generate in a different order; artifacts must match exactly.
    let t1 = SynthTraceConfig::small(5).generate(&WorkloadCatalog::sebs());
    let c1 = CarbonIntensityTrace::synthetic(Region::Caiso, 100, 5);
    let c2 = CarbonIntensityTrace::synthetic(Region::Caiso, 100, 5);
    let t2 = SynthTraceConfig::small(5).generate(&WorkloadCatalog::sebs());
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
}

#[test]
fn all_schedulers_are_deterministic() {
    let trace = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 90, 3);
    let fleet = skus::fleet_a();

    let run = |mk: &dyn Fn() -> Box<dyn Scheduler>| {
        let mut s = mk();
        let (_, m) = run_scheme(&trace, &ci, &fleet, &mut s);
        m.records
            .iter()
            .map(|r| (r.service_ms, r.warm))
            .collect::<Vec<_>>()
    };

    let factories: Vec<Box<dyn Fn() -> Box<dyn Scheduler>>> = vec![
        Box::new(|| Box::new(EcoLife::new(skus::fleet_a(), EcoLifeConfig::default()))),
        Box::new(|| {
            Box::new(BruteForce::oracle(
                skus::fleet_a(),
                CarbonIntensityTrace::synthetic(Region::Caiso, 90, 3),
            ))
        }),
        Box::new(|| Box::new(FixedPolicy::new_only())),
        Box::new(|| Box::new(FixedPolicy::old_only())),
    ];
    for f in &factories {
        assert_eq!(run(f.as_ref()), run(f.as_ref()));
    }
}

/// Strip the one field that is wall-clock-dependent (decision overhead is
/// measured in real nanoseconds) before bit-comparing two runs.
fn comparable(m: RunMetrics) -> (Vec<InvocationOutcome>, u64, u64) {
    let records = m
        .records
        .iter()
        .map(|r| InvocationOutcome {
            func: r.func,
            t_ms: r.t_ms,
            exec_location: r.exec_location,
            warm: r.warm,
            service_ms: r.service_ms,
            service_carbon_g: r.service_carbon.total_g(),
            keepalive_carbon_g: r.keepalive_carbon.total_g(),
            energy_kwh: r.energy_kwh,
        })
        .collect();
    (records, m.evicted_functions, m.transfers)
}

#[derive(Debug, PartialEq)]
struct InvocationOutcome {
    func: FunctionId,
    t_ms: u64,
    exec_location: NodeId,
    warm: bool,
    service_ms: u64,
    service_carbon_g: f64,
    keepalive_carbon_g: f64,
    energy_kwh: f64,
}

/// The two-node compatibility regression: scheduling over
/// `Fleet::from(skus::pair_a())` (the seed's `HardwarePair` path, which
/// now converts at the constructor boundary) must be bit-identical to
/// scheduling over the SKU-built two-node fleet, for every scheduler
/// family of the paper — every float equal, not merely close.
#[test]
fn two_node_fleet_is_bit_identical_to_the_pair_path() {
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 120,
        seed: 77,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 150, 77);

    // The same two nodes, reached through both construction paths.
    let via_pair = Fleet::from(skus::pair_a()).with_uniform_keepalive_budget_mib(8 * 1024);
    let via_skus =
        skus::fleet_of(&[Sku::I3Metal, Sku::M5znMetal]).with_uniform_keepalive_budget_mib(8 * 1024);
    assert_eq!(via_pair, via_skus, "construction paths diverged");

    type Factory<'a> = Box<dyn Fn(&Fleet) -> Box<dyn Scheduler> + 'a>;
    let factories: Vec<(&str, Factory)> = vec![
        (
            "FixedPolicy",
            Box::new(|_: &Fleet| Box::new(FixedPolicy::new_only()) as Box<dyn Scheduler>),
        ),
        (
            "EcoLife",
            Box::new(|f: &Fleet| {
                Box::new(EcoLife::new(f.clone(), EcoLifeConfig::default())) as Box<dyn Scheduler>
            }),
        ),
        (
            "BruteForce::oracle",
            Box::new(|f: &Fleet| {
                Box::new(BruteForce::oracle(
                    f.clone(),
                    CarbonIntensityTrace::synthetic(Region::Caiso, 150, 77),
                )) as Box<dyn Scheduler>
            }),
        ),
    ];

    for (name, mk) in &factories {
        let mut a = mk(&via_pair);
        let mut b = mk(&via_skus);
        let (_, ma) = run_scheme(&trace, &ci, &via_pair, &mut a);
        let (_, mb) = run_scheme(&trace, &ci, &via_skus, &mut b);
        assert_eq!(
            comparable(ma),
            comparable(mb),
            "{name}: pair-path and fleet-path runs diverged"
        );
    }
}

/// The seed workloads of this suite, as `(trace, ci, fleet)` — the same
/// traces the pre-shard suite replays, with warm-pool budgets sized so
/// the pools never overflow (verified below: the sequential runs report
/// zero transfers and zero evictions). This is the regime where the
/// sharded engine documents **exact** equality with the sequential
/// path; under memory pressure its cross-shard view is
/// period-granular (see `pressured_workload` and the invariants suite).
fn seed_workloads() -> Vec<(Trace, CarbonIntensityTrace, Fleet)> {
    let full = (
        SynthTraceConfig {
            n_functions: 12,
            duration_min: 90,
            seed: 11,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs()),
        CarbonIntensityTrace::synthetic(Region::Texas, 120, 11),
        skus::fleet_a().with_uniform_keepalive_budget_mib(16 * 1024),
    );
    let three_node = (
        SynthTraceConfig {
            n_functions: 16,
            duration_min: 120,
            seed: 77,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs()),
        CarbonIntensityTrace::synthetic(Region::Caiso, 150, 77),
        skus::fleet_three_generations().with_uniform_keepalive_budget_mib(16 * 1024),
    );
    vec![full, three_node]
}

/// The same three-node workload squeezed into pools a quarter the size:
/// the sequential run overflows constantly (transfers + evictions), so
/// the sharded run exercises stale-snapshot admission and ledger
/// reconciliation for real.
fn pressured_workload() -> (Trace, CarbonIntensityTrace, Fleet) {
    let (trace, ci, fleet) = seed_workloads().swap_remove(1);
    (trace, ci, fleet.with_uniform_keepalive_budget_mib(4 * 1024))
}

/// Sharded replay must be **bit-identical** to the pre-shard
/// single-threaded `Simulation::run` on the seed workloads, for every
/// shard count in {1, 2, 8} — for EcoLife (stateful, per-function DPSO +
/// global ΔCI), the oracle (global-index future knowledge), and the
/// fixed policy.
#[test]
fn sharded_replay_is_bit_identical_to_the_sequential_path() {
    for (wi, (trace, ci, fleet)) in seed_workloads().into_iter().enumerate() {
        let sim = Simulation::new(&trace, &ci, fleet.clone());

        type Factory<'a> = Box<dyn Fn() -> Box<dyn Scheduler + Send> + 'a>;
        let factories: Vec<(&str, Factory)> = vec![
            (
                "EcoLife",
                Box::new(|| {
                    Box::new(EcoLife::new(fleet.clone(), EcoLifeConfig::default()))
                        as Box<dyn Scheduler + Send>
                }),
            ),
            (
                "BruteForce::oracle",
                Box::new(|| {
                    Box::new(BruteForce::oracle(fleet.clone(), ci.clone()))
                        as Box<dyn Scheduler + Send>
                }),
            ),
            (
                "FixedPolicy",
                Box::new(|| Box::new(FixedPolicy::new_only()) as Box<dyn Scheduler + Send>),
            ),
        ];

        for (name, mk) in &factories {
            let mut sequential_scheduler = mk();
            let sequential = sim.run(&mut sequential_scheduler);
            // The exact-equality regime: the seed workloads never touch
            // the pool ceilings.
            assert_eq!(
                (sequential.transfers, sequential.evicted_functions),
                (0, 0),
                "workload {wi}/{name}: seed workload unexpectedly overflowed"
            );
            let sequential = comparable(sequential);
            for shards in [1usize, 2, 8] {
                let m = sim.run_sharded(|_| mk(), &ShardOptions::new(shards));
                assert_eq!(
                    m.reconcile_revocations, 0,
                    "workload {wi}/{name}: seed workload unexpectedly contended"
                );
                assert_eq!(
                    comparable(m),
                    sequential,
                    "workload {wi}/{name}: {shards}-shard run diverged from the sequential path"
                );
            }
        }
    }
}

/// Under genuine memory pressure the sharded engine's semantics are its
/// own (period-granular cross-shard visibility, documented in
/// `crates/sim`) — but they are still **deterministic**: the same
/// inputs give bit-identical runs at every worker-thread count, and the
/// post-reconciliation occupancy never exceeds any node's capacity.
#[test]
fn pressured_sharded_replay_is_deterministic_across_thread_counts() {
    let (trace, ci, fleet) = pressured_workload();
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let run = |threads: usize| {
        sim.run_sharded(
            |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
            &ShardOptions::new(8).with_threads(threads),
        )
    };
    let reference = run(1);
    // The squeeze is real: the run overflows and the ledger reconciles.
    assert!(
        reference.transfers + reference.evicted_functions > 0,
        "pressured workload did not overflow"
    );
    for threads in [2usize, 4] {
        let m = run(threads);
        assert_eq!(
            comparable(m.clone()),
            comparable(reference.clone()),
            "pressured 8-shard run diverged at {threads} workers"
        );
        assert_eq!(m.keepalive_g_by_node, reference.keepalive_g_by_node);
        assert_eq!(m.reconcile_revocations, reference.reconcile_revocations);
        assert_eq!(m.ledger_peak_mib, reference.ledger_peak_mib);
    }
    for (&peak, node) in reference.ledger_peak_mib.iter().zip(fleet.iter()) {
        assert!(
            peak <= node.keepalive_mem_mib,
            "post-reconciliation occupancy {peak} exceeds {} on {:?}",
            node.keepalive_mem_mib,
            node.id
        );
    }
}

/// Forcing the worker-thread count through `ShardOptions::with_threads`
/// (satellite of the shard PR: tests must not inherit
/// `available_parallelism`) never changes a bit of the result.
#[test]
fn sharded_replay_is_bit_identical_across_thread_counts() {
    let (trace, ci, fleet) = seed_workloads().swap_remove(1);
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let run = |shards: usize, threads: usize| {
        comparable(sim.run_sharded(
            |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
            &ShardOptions::new(shards).with_threads(threads),
        ))
    };
    let reference = run(8, 1);
    for threads in [2usize, 4, 16] {
        assert_eq!(
            run(8, threads),
            reference,
            "8 shards over {threads} workers diverged from the 1-worker run"
        );
    }
}

/// Per-node gram aggregates are summed per shard and merged in shard
/// order, so across shard counts they agree to float-summation
/// reassociation (records are bit-identical; this pins the documented
/// tolerance for the by-node vectors).
#[test]
fn sharded_per_node_grams_match_the_sequential_split() {
    let (trace, ci, fleet) = seed_workloads().swap_remove(0);
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let mut eco = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let sequential = sim.run(&mut eco);
    let sharded = sim.run_sharded(
        |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
        &ShardOptions::new(4),
    );
    assert_eq!(
        sequential.keepalive_g_by_node.len(),
        sharded.keepalive_g_by_node.len()
    );
    for (a, b) in sequential
        .keepalive_g_by_node
        .iter()
        .zip(&sharded.keepalive_g_by_node)
    {
        assert!(
            (a - b).abs() < 1e-9,
            "per-node keep-alive drifted: {a} vs {b}"
        );
    }
    assert!((sequential.total_carbon_g() - sharded.total_carbon_g()).abs() < 1e-9);
}

/// The seed engine semantics the two-node path must keep: exact warm and
/// cold service times for pair A (cold = half-sensitivity cold start +
/// scaled execution + 50 ms setup), pinned numerically.
#[test]
fn pair_a_service_times_match_seed_semantics() {
    let catalog = WorkloadCatalog::new(vec![FunctionProfile::new("f", 1_000, 2_000, 512, 0.64)]);
    let trace = Trace::new(
        catalog,
        vec![
            Invocation {
                func: FunctionId(0),
                t_ms: 0,
            },
            Invocation {
                func: FunctionId(0),
                t_ms: 2 * MINUTE_MS,
            },
        ],
    );
    let ci = CarbonIntensityTrace::constant(300.0, 60);
    let fleet = skus::fleet_a();

    // On the new node (perf 1.0): cold = 2000 + 1000 + 50, warm = 1050.
    let (_, m_new) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::new_only());
    assert_eq!(m_new.records[0].service_ms, 3_050);
    assert_eq!(m_new.records[1].service_ms, 1_050);

    // On the old node (perf 0.8 → slowdown 1.25): exec ×1.16 at
    // sensitivity 0.64 → 1160; cold start ×1.125 → 2250.
    let (_, m_old) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::old_only());
    assert_eq!(m_old.records[0].service_ms, 2_250 + 1_160 + 50);
    assert_eq!(m_old.records[1].service_ms, 1_160 + 50);
}

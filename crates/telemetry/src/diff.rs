//! Replay diffing: find the first divergent sequence number between two
//! serialized streams, and pretty-print event lines for humans.
//!
//! Because the hash chain folds every line into its successors, two
//! streams that diverge anywhere diverge at every later line — the
//! *first* divergence is the behavioral difference, everything after it
//! is chain fallout. That first event is what "summary differs" never
//! told you: which decision, expiry, or revocation went wrong.

/// The first point where two streams disagree. `None` on a side means
/// that stream ended early.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    pub seq: u64,
    pub left: Option<String>,
    pub right: Option<String>,
}

/// Compare two streams line by line; `None` means byte-identical.
/// The canonical spelling for identity assertions — the bit-identity
/// suites pin "no first divergence" instead of comparing record
/// structs, so a claim of sameness also covers event emission.
pub fn first_divergence(left: &[&str], right: &[&str]) -> Option<Divergence> {
    diff_lines(left, right)
}

/// Compare two streams line by line; `None` means byte-identical.
pub fn diff_lines(left: &[&str], right: &[&str]) -> Option<Divergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        let l = left.get(i).copied();
        let r = right.get(i).copied();
        if l != r {
            return Some(Divergence {
                seq: i as u64,
                left: l.map(str::to_string),
                right: r.map(str::to_string),
            });
        }
    }
    None
}

/// Expand a flat event line into an indented multi-line form. Splitting
/// on `,"` is exact for the sink's controlled format (no value contains
/// that byte pair).
pub fn pretty(line: &str) -> String {
    let inner = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .unwrap_or(line);
    let mut out = String::from("{\n");
    for (i, part) in inner.split(",\"").enumerate() {
        out.push_str("  ");
        if i > 0 {
            out.push('"');
        }
        out.push_str(part);
        out.push('\n');
    }
    out.push('}');
    out
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first divergence at seq {}:", self.seq)?;
        match &self.left {
            Some(l) => writeln!(f, "--- left\n{}", pretty(l))?,
            None => writeln!(f, "--- left\n<stream ended at seq {}>", self.seq)?,
        }
        match &self.right {
            Some(r) => write!(f, "+++ right\n{}", pretty(r)),
            None => write!(f, "+++ right\n<stream ended at seq {}>", self.seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_have_no_divergence() {
        assert_eq!(diff_lines(&["a", "b"], &["a", "b"]), None);
    }

    #[test]
    fn first_divergent_seq_is_reported() {
        let d = diff_lines(&["a", "b", "c"], &["a", "x", "y"]).unwrap();
        assert_eq!(d.seq, 1);
        assert_eq!(d.left.as_deref(), Some("b"));
        assert_eq!(d.right.as_deref(), Some("x"));
    }

    #[test]
    fn truncation_diverges_at_the_missing_line() {
        let d = diff_lines(&["a", "b"], &["a"]).unwrap();
        assert_eq!(d.seq, 1);
        assert_eq!(d.right, None);
    }

    #[test]
    fn pretty_splits_fields() {
        let p = pretty("{\"seq\":0,\"type\":\"RunStarted\",\"nodes\":2}");
        assert!(p.contains("\n  \"seq\":0\n"));
        assert!(p.contains("\n  \"nodes\":2\n"));
    }
}

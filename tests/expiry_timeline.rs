//! The expiry timeline is an *optimization*, never a semantic change:
//! the min-heap timeline with lazy invalidation (`ExpiryMode::Timeline`,
//! the default) must produce bit-identical runs — every float of every
//! record equal — to the original full-pool scan
//! (`ExpiryMode::Scan`, kept as the reference), under memory pressure
//! with transfers and revocations, sequentially and through
//! `run_sharded` at shard counts {1, 2, 8} × worker threads {1, 2, 4}.
//!
//! The directed matrix pins the exact configurations the ISSUE names;
//! the proptest block then fuzzes workloads, fleets, and budgets around
//! them. Both paths also cross-check the expiry counters: the two modes
//! must agree on *how many* containers lapsed, while each mode's own
//! mechanism counters (`scanned` vs `timeline_pops`) prove which code
//! path actually ran.

use ecolife::prelude::*;
use ecolife::sim::{ExpiryMode, ShardOptions};
use proptest::prelude::*;

/// A random fleet of 1–4 nodes drawn from the SKU catalog (duplicates
/// allowed), with one shared keep-alive budget.
fn fleet_from(sku_picks: &[usize], budget_mib: u64) -> Fleet {
    let catalog = skus::catalog();
    let skus: Vec<Sku> = sku_picks
        .iter()
        .map(|&i| catalog[i % catalog.len()])
        .collect();
    skus::fleet_of(&skus).with_uniform_keepalive_budget_mib(budget_mib)
}

fn workload(n_functions: usize, duration_min: u64, seed: u64) -> (Trace, CarbonIntensityTrace) {
    let trace = SynthTraceConfig {
        n_functions,
        duration_min,
        seed,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, duration_min as usize + 30, seed);
    (trace, ci)
}

/// One record, every float as exact bits:
/// `(func, t, node, warm, service_ms, service_g, keepalive_g, energy)`.
type RecordBits = (u32, u64, u64, bool, u64, u64, u64, u64);

/// Everything decision-dependent in a run, floats compared exactly
/// (decision overhead is wall-clock and excluded).
fn fingerprint(m: &RunMetrics) -> (Vec<RecordBits>, u64, u64) {
    (
        m.records
            .iter()
            .map(|r| {
                (
                    r.func.0,
                    r.t_ms,
                    r.exec_location.0 as u64,
                    r.warm,
                    r.service_ms,
                    r.service_carbon.total_g().to_bits(),
                    r.keepalive_carbon.total_g().to_bits(),
                    r.energy_kwh.to_bits(),
                )
            })
            .collect(),
        m.evicted_functions,
        m.transfers,
    )
}

/// Per-node keep-alive gram totals, bit-exact. Only comparable between
/// runs with the same shard layout (summation order is per shard).
fn by_node_bits(m: &RunMetrics) -> Vec<u64> {
    m.keepalive_g_by_node.iter().map(|g| g.to_bits()).collect()
}

fn config_for(mode: ExpiryMode) -> SimConfig {
    SimConfig::default().with_expiry(mode)
}

fn run_sequential(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: &Fleet,
    mode: ExpiryMode,
) -> RunMetrics {
    let config = EcoLifeConfig {
        pso_iters: 2,
        ..EcoLifeConfig::default()
    };
    Simulation::new(trace, ci, fleet.clone())
        .with_config(config_for(mode))
        .run(&mut EcoLife::new(fleet.clone(), config))
}

fn run_sharded(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: &Fleet,
    mode: ExpiryMode,
    shards: usize,
    threads: usize,
) -> RunMetrics {
    let config = EcoLifeConfig {
        pso_iters: 2,
        ..EcoLifeConfig::default()
    };
    Simulation::new(trace, ci, fleet.clone())
        .with_config(config_for(mode))
        .run_sharded(
            |_| EcoLife::new(fleet.clone(), config.clone()),
            &ShardOptions::new(shards).with_threads(threads),
        )
}

/// A workload + fleet squeezed hard enough that the warm pools overflow:
/// the run must exhibit transfers (and, sharded, revocations are live),
/// so the equality below covers the adversarial paths — eviction,
/// transfer re-insertion, reconciliation expiry — not just happy aging.
fn pressured_setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let (trace, ci) = workload(14, 60, 11);
    let fleet = fleet_from(&[0, 2], 3_000);
    (trace, ci, fleet)
}

#[test]
fn timeline_matches_scan_sequentially_under_pressure() {
    let (trace, ci, fleet) = pressured_setup();
    let scan = run_sequential(&trace, &ci, &fleet, ExpiryMode::Scan);
    let timeline = run_sequential(&trace, &ci, &fleet, ExpiryMode::Timeline);

    // The setup must actually exercise the adversarial paths.
    assert!(scan.transfers > 0, "setup no longer forces transfers");
    assert!(scan.expiry.expired > 0, "setup never expires a container");

    assert_eq!(fingerprint(&timeline), fingerprint(&scan));
    assert_eq!(by_node_bits(&timeline), by_node_bits(&scan));

    // Same lapse count, different mechanism — and proof each mode ran
    // its own code path.
    assert_eq!(timeline.expiry.expired, scan.expiry.expired);
    assert!(scan.expiry.scanned > 0, "scan mode never scanned");
    assert_eq!(
        timeline.expiry.scanned, 0,
        "timeline mode fell back to scanning"
    );
    assert_eq!(scan.expiry.timeline_pops, 0, "scan mode touched the heap");
    assert!(
        timeline.expiry.timeline_pops >= timeline.expiry.expired,
        "every expiry must come off the heap"
    );
}

#[test]
fn timeline_matches_scan_across_the_shard_thread_matrix() {
    let (trace, ci, fleet) = pressured_setup();
    let reference = run_sequential(&trace, &ci, &fleet, ExpiryMode::Scan);
    assert!(reference.transfers > 0, "setup no longer forces transfers");

    for &shards in &[1usize, 2, 8] {
        let scan = run_sharded(&trace, &ci, &fleet, ExpiryMode::Scan, shards, 1);
        for &threads in &[1usize, 2, 4] {
            let timeline = run_sharded(&trace, &ci, &fleet, ExpiryMode::Timeline, shards, threads);
            assert_eq!(
                fingerprint(&timeline),
                fingerprint(&scan),
                "records diverged at shards={shards} threads={threads}"
            );
            assert_eq!(
                by_node_bits(&timeline),
                by_node_bits(&scan),
                "per-node grams diverged at shards={shards} threads={threads}"
            );
            assert_eq!(
                timeline.ledger_peak_mib, scan.ledger_peak_mib,
                "ledger peaks diverged at shards={shards} threads={threads}"
            );
            assert_eq!(
                timeline.reconcile_revocations, scan.reconcile_revocations,
                "revocations diverged at shards={shards} threads={threads}"
            );
            assert_eq!(timeline.expiry.expired, scan.expiry.expired);
            assert_eq!(timeline.expiry.scanned, 0);
        }
        // One shard with the scan reference must also equal the plain
        // sequential run — the batching layer adds nothing.
        if shards == 1 {
            assert_eq!(fingerprint(&scan), fingerprint(&reference));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sequential bit-identity over random workloads, fleets, and
    /// keep-alive budgets — roomy and brutal alike (FixedPolicy's long
    /// 10-minute keep-alive maximizes resident containers, so small
    /// budgets overflow constantly).
    #[test]
    fn timeline_equals_scan_sequential(
        seed in 0u64..1_000_000,
        n_functions in 4usize..16,
        duration_min in 20u64..60,
        sku_picks in prop::collection::vec(0usize..4, 1..5),
        budget_mib in 512u64..8_000,
    ) {
        let (trace, ci) = workload(n_functions, duration_min, seed);
        let fleet = fleet_from(&sku_picks, budget_mib);
        let run = |mode: ExpiryMode| {
            Simulation::new(&trace, &ci, fleet.clone())
                .with_config(config_for(mode))
                .run(&mut FixedPolicy::pinned(fleet.newest(), 10))
        };
        let scan = run(ExpiryMode::Scan);
        let timeline = run(ExpiryMode::Timeline);
        prop_assert_eq!(fingerprint(&timeline), fingerprint(&scan));
        prop_assert_eq!(by_node_bits(&timeline), by_node_bits(&scan));
        prop_assert_eq!(timeline.expiry.expired, scan.expiry.expired);
    }

    /// Sharded bit-identity: same fuzz, arbitrary shard/thread counts,
    /// pressured budgets so reconciliation revokes and transfers.
    #[test]
    fn timeline_equals_scan_sharded(
        seed in 0u64..1_000_000,
        n_functions in 4usize..16,
        sku_picks in prop::collection::vec(0usize..4, 1..4),
        budget_mib in 512u64..6_000,
        shards in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
        threads in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let (trace, ci) = workload(n_functions, 30, seed);
        let fleet = fleet_from(&sku_picks, budget_mib);
        let run = |mode: ExpiryMode| {
            Simulation::new(&trace, &ci, fleet.clone())
                .with_config(config_for(mode))
                .run_sharded(
                    |_| FixedPolicy::pinned(fleet.newest(), 10),
                    &ShardOptions::new(shards).with_threads(threads),
                )
        };
        let scan = run(ExpiryMode::Scan);
        let timeline = run(ExpiryMode::Timeline);
        prop_assert_eq!(fingerprint(&timeline), fingerprint(&scan));
        prop_assert_eq!(by_node_bits(&timeline), by_node_bits(&scan));
        prop_assert_eq!(timeline.ledger_peak_mib.clone(), scan.ledger_peak_mib.clone());
        prop_assert_eq!(timeline.reconcile_revocations, scan.reconcile_revocations);
        prop_assert_eq!(timeline.expiry.expired, scan.expiry.expired);
    }
}

/root/repo/target/debug/deps/end_to_end-b7acd6aafccb1795.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b7acd6aafccb1795: tests/end_to_end.rs

tests/end_to_end.rs:

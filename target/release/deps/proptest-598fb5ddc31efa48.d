/root/repo/target/release/deps/proptest-598fb5ddc31efa48.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-598fb5ddc31efa48: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:

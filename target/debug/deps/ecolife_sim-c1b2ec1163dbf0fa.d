/root/repo/target/debug/deps/ecolife_sim-c1b2ec1163dbf0fa.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_sim-c1b2ec1163dbf0fa.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! # ecolife-pso — swarm optimization with EcoLife's dynamic extensions
//!
//! The paper's Keeping-alive Decision Maker is built on Particle Swarm
//! Optimization with two novel extensions (Sec. IV-C):
//!
//! 1. **Adaptive weights** — the inertia `ω` and the cognitive/social
//!    coefficients `c1 = c2` are recomputed from the normalized
//!    environment change signals ΔF (function invocations) and ΔCI
//!    (carbon intensity):
//!
//!    ```text
//!    ω  = ω_max · (ΔF/ΔF_max + ΔCI/ΔCI_max)
//!    c1 = c2 = c_max · (1 − ΔF/ΔF_max − ΔCI/ΔCI_max)
//!    ```
//!
//! 2. **Perception–response** — when a change is perceived, half the
//!    swarm is randomly redistributed over the search space (regaining
//!    exploration), while the other half retains its positions (memory).
//!
//! The crate also implements the two nature-inspired comparators the
//! paper quantifies against (Sec. IV-C): a Genetic Algorithm (crossover
//! 0.6, mutation 0.01, population 15) and Simulated Annealing (T₀ = 100,
//! T_stop = 1, α = 0.9).
//!
//! All optimizers are deterministic given their seed and generic over a
//! fitness closure `f: &[f64] -> f64` (lower is better).

pub mod dpso;
pub mod ga;
pub mod pso;
pub mod sa;
pub mod space;

pub use dpso::{DpsoConfig, DynamicPso};
pub use ga::{GaConfig, GeneticAlgorithm};
pub use pso::{Pso, PsoConfig};
pub use sa::{SaConfig, SimulatedAnnealing};
pub use space::decode;
pub use space::SearchSpace;

/// Common interface: iterate an optimizer against a fitness function and
/// read the best position found so far.
pub trait Optimizer {
    /// Advance one iteration (one generation / one swarm movement / one
    /// annealing step batch) against `fitness` (lower is better).
    fn step<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F);

    /// Best position found so far.
    fn best_position(&self) -> &[f64];

    /// Fitness of the best position.
    fn best_fitness(&self) -> f64;

    /// Convenience: run `iters` iterations and return the best.
    fn run<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F, iters: usize) -> (Vec<f64>, f64) {
        for _ in 0..iters {
            self.step(fitness);
        }
        (self.best_position().to_vec(), self.best_fitness())
    }
}

/// Ask/tell interface for population optimizers whose iteration is
/// "evaluate every candidate, then move": [`ask`](BatchOptimizer::ask)
/// exposes the generation's positions, the caller evaluates them however
/// it likes (serially, memoized, fanned out over threads), and
/// [`tell`](BatchOptimizer::tell) completes the iteration with the
/// fitness values.
///
/// `ask` followed by `tell` with exact fitness values is equivalent to
/// one [`Optimizer::step`] — the optimizer's own RNG is only consumed in
/// the movement phase, so the trajectory is independent of *how* the
/// batch was evaluated. That is what lets a caller parallelize fitness
/// evaluation (e.g. one simulation per candidate) without giving up
/// seed-determinism.
///
/// Simulated Annealing is deliberately not a `BatchOptimizer`: its walk
/// proposes candidates one at a time, each conditioned on the previous
/// acceptance, so there is no generation to batch.
pub trait BatchOptimizer: Optimizer {
    /// The positions the current iteration will evaluate, in a stable
    /// order.
    fn ask(&self) -> Vec<Vec<f64>>;

    /// Complete the iteration with fitness values aligned to
    /// [`ask`](BatchOptimizer::ask)'s order (lower is better).
    ///
    /// # Panics
    /// Panics when `fitnesses.len()` differs from the size of the batch
    /// returned by `ask`.
    fn tell(&mut self, fitnesses: &[f64]);

    /// One iteration through a batch evaluator: `ask` → `batch_fitness`
    /// → `tell`.
    fn step_batched<F: Fn(&[Vec<f64>]) -> Vec<f64>>(&mut self, batch_fitness: &F) {
        let batch = self.ask();
        let fitnesses = batch_fitness(&batch);
        self.tell(&fitnesses);
    }
}

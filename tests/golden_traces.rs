//! In-process pin of `tests/golden/`: every golden workload, re-run
//! here, must reproduce its checked-in stream byte for byte. The CI
//! `golden-traces` job runs the same comparison out of process (release
//! build, `golden_traces check` + `ecolife-trace verify`); this test
//! keeps the pin inside plain `cargo test`.

use ecolife::golden::{run_golden, snapshot, GOLDEN_WORKLOADS};
use ecolife::telemetry::{diff_lines, verify_lines, GoldenSnapshot};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn golden_workloads_reproduce_their_checked_in_streams() {
    for name in GOLDEN_WORKLOADS {
        let sink = run_golden(name);
        let snap = snapshot(name, &sink);

        let baseline = GoldenSnapshot::parse(
            &std::fs::read_to_string(golden_dir().join(format!("{name}.golden")))
                .unwrap_or_else(|e| panic!("{name}.golden unreadable: {e}")),
        )
        .expect("golden parses");
        assert_eq!(baseline.workload, name);

        let jsonl = std::fs::read_to_string(golden_dir().join(format!("{name}.jsonl")))
            .unwrap_or_else(|e| panic!("{name}.jsonl unreadable: {e}"));
        let want: Vec<&str> = jsonl.lines().collect();

        if let Some(div) = diff_lines(&want, &sink.lines()) {
            panic!("{name} drifted from its golden baseline:\n{div}");
        }
        assert_eq!(snap.events, baseline.events, "{name}: event count moved");
        assert_eq!(snap.tip, baseline.tip, "{name}: chain tip moved");

        // The checked-in stream itself is a valid chain whose tip is
        // the one the .golden pins.
        let summary = verify_lines(want.iter().copied()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(baseline.matches(&summary));
    }
}

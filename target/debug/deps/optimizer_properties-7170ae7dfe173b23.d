/root/repo/target/debug/deps/optimizer_properties-7170ae7dfe173b23.d: crates/pso/tests/optimizer_properties.rs

/root/repo/target/debug/deps/optimizer_properties-7170ae7dfe173b23: crates/pso/tests/optimizer_properties.rs

crates/pso/tests/optimizer_properties.rs:

/root/repo/target/debug/deps/ecolife_pso-75db1bb9863924e8.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_pso-75db1bb9863924e8.rmeta: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs Cargo.toml

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig12_single_gen_ecolife-d80ab6d6260a4e3d.d: crates/bench/benches/fig12_single_gen_ecolife.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_single_gen_ecolife-d80ab6d6260a4e3d.rmeta: crates/bench/benches/fig12_single_gen_ecolife.rs Cargo.toml

crates/bench/benches/fig12_single_gen_ecolife.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

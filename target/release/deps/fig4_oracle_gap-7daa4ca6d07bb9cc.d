/root/repo/target/release/deps/fig4_oracle_gap-7daa4ca6d07bb9cc.d: crates/bench/benches/fig4_oracle_gap.rs Cargo.toml

/root/repo/target/release/deps/libfig4_oracle_gap-7daa4ca6d07bb9cc.rmeta: crates/bench/benches/fig4_oracle_gap.rs Cargo.toml

crates/bench/benches/fig4_oracle_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife-aa36dc87cf2b464a.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libecolife-aa36dc87cf2b464a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Golden snapshots: the three-line contract a checked-in baseline pins.
//!
//! Because the chain tip transitively hashes every event, `(events,
//! tip)` pins an entire run — the snapshot stays tiny while still
//! detecting any behavioral drift. The full JSONL stream is checked in
//! beside it so a failing comparison can name the first divergent event
//! (see [`crate::diff_lines`]), not just "tip differs".

use crate::chain::ChainSummary;

/// A parsed `.golden` file.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenSnapshot {
    pub workload: String,
    pub events: u64,
    pub tip: String,
}

const HEADER: &str = "ecolife-trace golden v1";

impl GoldenSnapshot {
    pub fn new(workload: &str, summary: &ChainSummary) -> Self {
        GoldenSnapshot {
            workload: workload.to_string(),
            events: summary.events,
            tip: summary.tip.clone(),
        }
    }

    /// The file format, line by line: header, workload, event count, tip.
    pub fn render(&self) -> String {
        format!(
            "{HEADER}\nworkload: {}\nevents: {}\ntip: {}\n",
            self.workload, self.events, self.tip
        )
    }

    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            other => return Err(format!("bad golden header: {other:?}")),
        }
        let take = |lines: &mut std::str::Lines<'_>, key: &str| -> Result<String, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("missing '{key}:' line"))?;
            line.strip_prefix(key)
                .and_then(|l| l.strip_prefix(": "))
                .map(str::to_string)
                .ok_or_else(|| format!("expected '{key}: …', got '{line}'"))
        };
        let workload = take(&mut lines, "workload")?;
        let events = take(&mut lines, "events")?
            .parse::<u64>()
            .map_err(|e| format!("bad event count: {e}"))?;
        let tip = take(&mut lines, "tip")?;
        Ok(GoldenSnapshot {
            workload,
            events,
            tip,
        })
    }

    /// Does a freshly produced chain match this baseline?
    pub fn matches(&self, summary: &ChainSummary) -> bool {
        self.events == summary.events && self.tip == summary.tip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let snap = GoldenSnapshot {
            workload: "quickstart".into(),
            events: 1234,
            tip: "ab".repeat(32),
        };
        assert_eq!(GoldenSnapshot::parse(&snap.render()).unwrap(), snap);
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(GoldenSnapshot::parse("something else\n").is_err());
    }
}

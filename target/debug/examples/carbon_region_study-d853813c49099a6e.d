/root/repo/target/debug/examples/carbon_region_study-d853813c49099a6e.d: examples/carbon_region_study.rs Cargo.toml

/root/repo/target/debug/examples/libcarbon_region_study-d853813c49099a6e.rmeta: examples/carbon_region_study.rs Cargo.toml

examples/carbon_region_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! The repository's golden-trace workloads: three small, fully
//! deterministic runs — one per flagship example — whose complete event
//! streams are checked into `tests/golden/` as `<name>.jsonl` plus a
//! `<name>.golden` summary (event count + chain-tip hash).
//!
//! Any engine change that alters observable behavior moves a hash and
//! fails both the `tests/golden_traces.rs` pin and the CI
//! `golden-traces` job, which reports the *first divergent event* via
//! [`ecolife_telemetry::diff_lines`]. Intentional changes regenerate
//! the baselines with `cargo run --release --bin golden_traces -- emit`.
//!
//! The workloads are scaled-down twins of `examples/quickstart.rs`,
//! `examples/fleet_cluster.rs`, and `examples/carbon_region_study.rs`
//! (same fleets, schedulers, and seeds; shorter traces keep the
//! checked-in streams small). `fleet_cluster` runs through the
//! *sharded* engine on purpose: its golden pins the
//! sharded-equals-sequential stream discipline at a fixed shard layout.

use ecolife_carbon::{CarbonIntensityTrace, CiBundle, Region};
use ecolife_core::{EcoLife, EcoLifeConfig};
use ecolife_hw::skus;
use ecolife_sim::{CaptureSink, ShardOptions, Simulation};
use ecolife_telemetry::GoldenSnapshot;
use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

/// The golden workload names, in emission order.
pub const GOLDEN_WORKLOADS: [&str; 3] = ["quickstart", "fleet_cluster", "carbon_region_study"];

/// Replay one golden workload and capture its full event stream.
///
/// Panics on an unknown name — the caller iterates
/// [`GOLDEN_WORKLOADS`].
pub fn run_golden(name: &str) -> CaptureSink {
    let mut sink = CaptureSink::default();
    match name {
        // examples/quickstart.rs in miniature: pair-A fleet, CISO grid,
        // EcoLife, sequential engine.
        "quickstart" => {
            let trace = SynthTraceConfig {
                n_functions: 8,
                duration_min: 45,
                seed: 42,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 42);
            let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(10 * 1024);
            Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(
                &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &mut sink,
            );
        }
        // examples/fleet_cluster.rs in miniature: three CPU generations,
        // EcoLife — replayed through the *sharded* engine so the golden
        // also pins the merged-stream discipline.
        "fleet_cluster" => {
            let trace = SynthTraceConfig {
                n_functions: 10,
                duration_min: 45,
                seed: 7,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 7);
            let fleet = skus::fleet_of(&[
                ecolife_hw::Sku::I3Metal,
                ecolife_hw::Sku::M5Metal,
                ecolife_hw::Sku::M5znMetal,
            ])
            .with_uniform_keepalive_budget_mib(10 * 1024);
            Simulation::new(&trace, &ci, fleet.clone()).run_sharded_with_sink(
                |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &ShardOptions::new(4).with_threads(2),
                &mut sink,
            );
        }
        // examples/carbon_region_study.rs in miniature: the ten-node
        // five-region fleet, one free EcoLife, per-node grid series.
        "carbon_region_study" => {
            let trace = SynthTraceConfig {
                n_functions: 8,
                duration_min: 45,
                seed: 1234,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let bundle = CiBundle::synthetic_all(60, 1234);
            let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(12 * 1024);
            Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .expect("five-region bundle covers the fleet")
                .run_with_sink(
                    &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                    &mut sink,
                );
        }
        other => panic!("unknown golden workload '{other}'"),
    }
    sink
}

/// The `<name>.golden` summary for a captured stream.
pub fn snapshot(name: &str, sink: &CaptureSink) -> GoldenSnapshot {
    let tip = sink
        .tip()
        .expect("golden workloads emit at least RunStarted/RunEnded");
    GoldenSnapshot {
        workload: name.to_string(),
        events: sink.len() as u64,
        tip: tip.to_string(),
    }
}

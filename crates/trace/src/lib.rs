//! # ecolife-trace — serverless workloads and invocation traces
//!
//! Three substrates:
//!
//! * [`workload`] — a catalog of SeBS-style serverless functions
//!   (video-processing, graph-bfs, dna-visualization, …) with the
//!   per-function profile the simulator needs: base execution time on the
//!   reference hardware generation, cold-start overhead, memory footprint,
//!   and CPU sensitivity (how much of the runtime scales with single-thread
//!   speed across generations).
//! * [`azure`] — a parser for the Microsoft Azure Functions 2019 trace
//!   CSV schema ("Serverless in the Wild" [26]) plus the trace → catalog
//!   mapping the paper describes ("EcoLife maps all serverless functions to
//!   the closest match, considering the memory and execution time").
//! * [`synth`] — a seeded synthetic Azure-like trace generator matching the
//!   published marginals (heavy-tailed per-function popularity; a mix of
//!   Poisson, periodic, and bursty arrival classes), used when the real
//!   trace files are not available.
//!
//! [`stats`] adds the inter-arrival bookkeeping EcoLife's online predictor
//! is built on, and [`source`] turns workloads into pull-based streams
//! (batch [`Trace`]s and live bounded-channel lanes behind one
//! [`InvocationSource`] trait) for the `ecolife-service` ingest path.

pub mod azure;
pub mod invocation;
pub mod loader;
pub mod source;
pub mod stats;
pub mod synth;
pub mod workload;

pub use invocation::{Invocation, PushError, Trace};
pub use loader::TraceLoader;
pub use source::{live_lanes, IngestError, InvocationSource, LaneIngest, LiveSource, TraceSource};
pub use stats::InterArrivalStats;
pub use synth::{ArrivalClass, SynthTraceConfig};
pub use workload::{FunctionId, FunctionProfile, WorkloadCatalog};

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
///
/// The single source of per-id stream derivation across the workspace:
/// [`synth`] seeds each synthetic function's RNG with it, and the
/// simulator's shard assignment (`ecolife_sim::shard_of`) hashes
/// `FunctionId`s through it — nearby inputs land in unrelated outputs,
/// and the mapping depends on nothing but its input.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn splitmix64_scrambles_and_is_pure() {
        // Pinned values: shard assignment and synthetic streams both
        // derive from this exact mapping, so it must never drift.
        assert_eq!(super::splitmix64(0), 0);
        assert_ne!(super::splitmix64(1), super::splitmix64(2));
        assert_eq!(super::splitmix64(42), super::splitmix64(42));
        // Consecutive inputs diverge across the whole word.
        let (a, b) = (super::splitmix64(100), super::splitmix64(101));
        assert!((a ^ b).count_ones() > 16, "weak diffusion: {a:x} vs {b:x}");
    }
}

/root/repo/target/release/deps/tune-b0c560f16419928f.d: crates/bench/src/bin/tune.rs

/root/repo/target/release/deps/tune-b0c560f16419928f: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:

/root/repo/target/release/deps/tune-52da0343d927cd74.d: crates/bench/src/bin/tune.rs

/root/repo/target/release/deps/tune-52da0343d927cd74: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:

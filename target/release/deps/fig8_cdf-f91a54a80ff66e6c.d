/root/repo/target/release/deps/fig8_cdf-f91a54a80ff66e6c.d: crates/bench/benches/fig8_cdf.rs Cargo.toml

/root/repo/target/release/deps/libfig8_cdf-f91a54a80ff66e6c.rmeta: crates/bench/benches/fig8_cdf.rs Cargo.toml

crates/bench/benches/fig8_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

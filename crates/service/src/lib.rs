//! # ecolife-service — the replay engine as a live service
//!
//! The batch paths ([`Simulation::run`](ecolife_sim::Simulation) and its
//! sharded twin) see the whole workload up front. A live platform does
//! not: invocations arrive one at a time from producers it does not
//! control, and the platform must admit, place, and account for each
//! before it knows what comes next. [`Service`] is that driver, built on
//! the same per-invocation core ([`Engine`](ecolife_sim::Engine)) the
//! batch replayer runs — not a reimplementation of it.
//!
//! ## Determinism: service ≡ batch, bit for bit
//!
//! Each accepted arrival is appended to a growing [`Trace`]
//! ([`Trace::push_arrival`]), and the engine is re-assembled over the
//! prefix before stepping. Because the trace is time-sorted, every
//! canonical telemetry anchor (a `partition_point` over arrival times)
//! computed against the prefix equals the full-trace one for any instant
//! at or before the current arrival — so driving the engine arrival by
//! arrival serializes **bit-for-bit** the same metrics and hash-chained
//! event stream as a batch replay of the final trace, at any producer
//! thread count ([`ecolife_trace::source`]'s lane discipline keeps the
//! consumed order workload-pure). `tests/service.rs` pins this.
//!
//! ## Typed edges
//!
//! Everything a real ingest door must reject is a typed error, never a
//! panic or a silent drop:
//!
//! * [`ServeError::OutOfOrder`] / [`ServeError::UnknownFunction`] — the
//!   producer broke the stream contract;
//! * [`ServeError::CiTooShort`] — the carbon-intensity series ends
//!   before this arrival (the batch path validates the whole horizon at
//!   construction; a live service can only check per arrival);
//! * executor admission — with bounded executors enabled
//!   ([`SimConfig::with_bounded_executors`]), saturated nodes queue up
//!   to the configured depth and then reject; rejections surface in
//!   [`RunMetrics::rejected`](ecolife_sim::RunMetrics) and as
//!   `AdmissionRejected` telemetry, while producers feel backpressure
//!   through the bounded ingest lanes
//!   ([`ecolife_trace::LaneIngest::try_send`]).

use ecolife_carbon::{CarbonIntensityTrace, CiBundle, CiError, CiProvider, StalenessPolicy};
use ecolife_hw::Fleet;
use ecolife_sim::{
    Engine, EventSink, FaultPlan, MembershipPlan, NullSink, RunMetrics, RunState, Scheduler,
    SimConfig,
};
use ecolife_trace::{FunctionId, InvocationSource, PushError, Trace, WorkloadCatalog};
use std::fmt;

/// Why the service refused an arrival (the whole run stops: every one of
/// these is a broken caller contract, not workload behavior — workload
/// overload is handled by executor admission and shows up in metrics,
/// not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The source yielded an arrival earlier than one already ingested.
    OutOfOrder {
        /// The offending arrival time.
        t_ms: u64,
        /// The ingest horizon it would have to rewind past.
        horizon_ms: u64,
    },
    /// The arrival references a function outside the service's catalog.
    UnknownFunction {
        /// The unresolvable id.
        func: FunctionId,
        /// Catalog size (valid ids are `0..catalog_len`).
        catalog_len: usize,
    },
    /// The carbon-intensity series does not cover this arrival: serving
    /// it would price carbon off a clamped sample.
    /// [`CarbonIntensityTrace::extend_cyclic`] is the explicit opt-in
    /// for longer horizons.
    CiTooShort {
        /// The arrival that ran off the series.
        t_ms: u64,
        /// Length of the shortest per-node series (ms).
        ci_len_ms: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::OutOfOrder { t_ms, horizon_ms } => write!(
                f,
                "arrival at {t_ms} ms precedes the ingest horizon {horizon_ms} ms"
            ),
            ServeError::UnknownFunction { func, catalog_len } => write!(
                f,
                "arrival references function {func} outside catalog (len {catalog_len})"
            ),
            ServeError::CiTooShort { t_ms, ci_len_ms } => write!(
                f,
                "carbon-intensity series ({ci_len_ms} ms) does not cover arrival at {t_ms} ms"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PushError> for ServeError {
    fn from(e: PushError) -> Self {
        match e {
            PushError::OutOfOrder { t_ms, horizon_ms } => {
                ServeError::OutOfOrder { t_ms, horizon_ms }
            }
            PushError::UnknownFunction { func, catalog_len } => {
                ServeError::UnknownFunction { func, catalog_len }
            }
        }
    }
}

/// A virtual-clock live service: pulls invocations from an
/// [`InvocationSource`], ingests each through the shared replay engine
/// the moment it arrives, and settles into the exact metrics + telemetry
/// a batch replay of the same workload produces.
///
/// ```
/// use ecolife_service::Service;
/// use ecolife_sim::{Decision, InvocationCtx, Scheduler};
/// use ecolife_carbon::CarbonIntensityTrace;
/// use ecolife_hw::skus;
/// use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};
///
/// struct ColdOnly;
/// impl Scheduler for ColdOnly {
///     fn name(&self) -> &'static str { "cold-only" }
///     fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
///         Decision { exec: ctx.cluster.fleet().newest(), keepalive: None }
///     }
/// }
///
/// let workload = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
/// let ci = CarbonIntensityTrace::constant(300.0, 600);
///
/// let service = Service::new(workload.catalog().clone(), &ci, skus::fleet_a());
/// let live = service.serve(workload.source(), &mut ColdOnly).unwrap();
/// assert_eq!(live.records.len(), workload.len());
/// ```
#[derive(Debug)]
pub struct Service<'a> {
    /// The growing trace: every accepted arrival lands here, so at any
    /// instant the service state is "the batch engine over this prefix".
    trace: Trace,
    ci: CiProvider<'a>,
    fleet: Fleet,
    config: SimConfig,
    membership: MembershipPlan,
    faults: FaultPlan,
}

impl<'a> Service<'a> {
    /// Open a service for `catalog` over `fleet`, every node reading the
    /// one shared CI series (the paper's single-region setup). Unlike
    /// batch construction there is no workload yet, so CI coverage is
    /// checked per arrival instead of at build time.
    pub fn new(
        catalog: WorkloadCatalog,
        ci: &'a CarbonIntensityTrace,
        fleet: impl Into<Fleet>,
    ) -> Self {
        let fleet = fleet.into();
        let ci = CiProvider::shared(ci, &fleet);
        Service {
            trace: Trace::new(catalog, Vec::new()),
            ci,
            fleet,
            config: SimConfig::default(),
            membership: MembershipPlan::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Multi-region form: each node prices carbon off its own region's
    /// series from `bundle`. Errs when a node's region has no series.
    pub fn try_new_regional(
        catalog: WorkloadCatalog,
        bundle: &'a CiBundle,
        fleet: impl Into<Fleet>,
    ) -> Result<Self, CiError> {
        let fleet = fleet.into();
        let ci = CiProvider::from_bundle(bundle, &fleet)?;
        Ok(Service {
            trace: Trace::new(catalog, Vec::new()),
            ci,
            fleet,
            config: SimConfig::default(),
            membership: MembershipPlan::default(),
            faults: FaultPlan::default(),
        })
    }

    /// Replace the engine configuration (enable bounded executors here:
    /// [`SimConfig::with_bounded_executors`]).
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach an online-membership timeline (nodes leaving / rejoining
    /// mid-stream), exactly as on the batch path.
    pub fn with_membership(mut self, plan: MembershipPlan) -> Self {
        self.membership = plan;
        self
    }

    /// Attach a deterministic fault-injection timeline
    /// ([`FaultPlan`]), exactly as on the batch path: CI outages
    /// overlay the provider with last-known-good data here, once;
    /// crashes and partitions replay through the engine timeline as
    /// arrivals come in.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.ci.apply_outages(&plan.outage_spans());
        self.faults = plan;
        self
    }

    /// Override the CI [`StalenessPolicy`], exactly as on the batch
    /// path ([`Simulation::with_staleness`](ecolife_sim::Simulation)).
    pub fn with_staleness(mut self, policy: StalenessPolicy) -> Self {
        self.ci = self.ci.with_staleness(policy);
        self
    }

    /// The catalog this service resolves function ids against.
    pub fn catalog(&self) -> &WorkloadCatalog {
        self.trace.catalog()
    }

    /// Drain `source` to exhaustion, ingesting every arrival as it
    /// comes; returns the final metrics. Consumes the service — a run's
    /// trace, pools, and executor state are one-shot.
    pub fn serve<S: Scheduler>(
        self,
        source: impl InvocationSource,
        scheduler: &mut S,
    ) -> Result<RunMetrics, ServeError> {
        self.serve_with_sink(source, scheduler, &mut NullSink)
    }

    /// [`Service::serve`] with a hash-chained telemetry stream: the
    /// sealed stream is byte-identical to
    /// [`Simulation::run_with_sink`](ecolife_sim::Simulation) over the
    /// final trace.
    pub fn serve_with_sink<S: Scheduler, K: EventSink>(
        mut self,
        mut source: impl InvocationSource,
        scheduler: &mut S,
        sink: &mut K,
    ) -> Result<RunMetrics, ServeError> {
        // `prepare` reads only the catalog (captures it and clears
        // per-function state), so priming on the still-empty trace is
        // exactly what a batch run over the final trace does first.
        scheduler.prepare(&self.trace);
        let mut state: Option<RunState> = None;
        while let Some(inv) = source.next_invocation() {
            if self.ci.min_len_ms() <= inv.t_ms {
                return Err(ServeError::CiTooShort {
                    t_ms: inv.t_ms,
                    ci_len_ms: self.ci.min_len_ms(),
                });
            }
            let index = self.trace.push_arrival(inv)?;
            // Six references — free to re-assemble per arrival, and the
            // borrow of the just-grown trace must be, since `push_arrival`
            // needs the trace back between steps.
            let engine = Engine::new(
                &self.trace,
                &self.ci,
                &self.fleet,
                &self.config,
                &self.membership,
                &self.faults,
            );
            let run = state.get_or_insert_with(|| engine.begin());
            engine.ingest::<S, K>(run, index, &inv, scheduler);
        }
        let engine = Engine::new(
            &self.trace,
            &self.ci,
            &self.fleet,
            &self.config,
            &self.membership,
            &self.faults,
        );
        let mut run = state.unwrap_or_else(|| engine.begin());
        engine.finish::<K>(&mut run);
        Ok(engine.seal::<K>(run, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::{skus, NodeId};
    use ecolife_sim::{CaptureSink, Decision, InvocationCtx, KeepAliveChoice, Simulation};
    use ecolife_trace::{live_lanes, FunctionProfile, Invocation, SynthTraceConfig};

    /// Warm-aware fixed policy: run where warm (else node 0), keep alive
    /// two minutes on the executing node — enough to exercise pools and
    /// expiry on both drivers.
    struct Sticky;
    impl Scheduler for Sticky {
        fn name(&self) -> &'static str {
            "sticky"
        }
        fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
            let exec = ctx.warm_at.unwrap_or(NodeId(0));
            Decision {
                exec,
                keepalive: Some(KeepAliveChoice {
                    location: exec,
                    duration_ms: 120_000,
                }),
            }
        }
    }

    fn workload(seed: u64) -> Trace {
        SynthTraceConfig::small(seed).generate(&WorkloadCatalog::sebs())
    }

    /// Record-for-record equality over every deterministic field
    /// (`decision_overhead_ns` is wall-clock and excluded).
    fn assert_same_run(a: &RunMetrics, b: &RunMetrics) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.evicted_functions, b.evicted_functions);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.transfer_g_by_node, b.transfer_g_by_node);
        assert_eq!(a.keepalive_g_by_node, b.keepalive_g_by_node);
        assert_eq!(a.queue_ms_by_node, b.queue_ms_by_node);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.executor_peak_by_node, b.executor_peak_by_node);
        assert_eq!(a.expiry, b.expiry);
    }

    #[test]
    fn serve_error_displays_and_is_std_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(ServeError::OutOfOrder {
                t_ms: 5,
                horizon_ms: 9,
            }),
            Box::new(ServeError::UnknownFunction {
                func: FunctionId(7),
                catalog_len: 3,
            }),
            Box::new(ServeError::CiTooShort {
                t_ms: 90_000,
                ci_len_ms: 60_000,
            }),
        ];
        let rendered: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("precedes the ingest horizon 9 ms"));
        assert!(rendered[1].contains("outside catalog (len 3)"));
        assert!(rendered[2].contains("does not cover arrival at 90000 ms"));
    }

    #[test]
    fn service_metrics_match_batch_replay() {
        let trace = workload(11);
        let ci = CarbonIntensityTrace::constant(300.0, 600);
        let mut s1 = Sticky;
        let batch = Simulation::new(&trace, &ci, skus::fleet_a()).run(&mut s1);
        let mut s2 = Sticky;
        let live = Service::new(trace.catalog().clone(), &ci, skus::fleet_a())
            .serve(trace.source(), &mut s2)
            .unwrap();
        assert_same_run(&batch, &live);
    }

    #[test]
    fn service_stream_matches_batch_stream() {
        let trace = workload(12);
        let ci = CarbonIntensityTrace::constant(300.0, 600);
        let mut batch_sink = CaptureSink::default();
        let mut s1 = Sticky;
        Simulation::new(&trace, &ci, skus::fleet_a()).run_with_sink(&mut s1, &mut batch_sink);
        let mut live_sink = CaptureSink::default();
        let mut s2 = Sticky;
        Service::new(trace.catalog().clone(), &ci, skus::fleet_a())
            .serve_with_sink(trace.source(), &mut s2, &mut live_sink)
            .unwrap();
        assert_eq!(batch_sink.lines(), live_sink.lines());
    }

    #[test]
    fn live_lane_ingest_matches_batch() {
        let trace = workload(13);
        let ci = CarbonIntensityTrace::constant(300.0, 600);
        let mut s1 = Sticky;
        let batch = Simulation::new(&trace, &ci, skus::fleet_a()).run(&mut s1);
        let (handles, source) = live_lanes(2, 8);
        let all = trace.invocations().to_vec();
        let split = all.len() / 2;
        let live = std::thread::scope(|scope| {
            let (first, second) = all.split_at(split);
            let mut handles = handles.into_iter();
            let h0 = handles.next().unwrap();
            let h1 = handles.next().unwrap();
            scope.spawn(move || {
                for &i in first {
                    h0.send(i).unwrap();
                }
            });
            scope.spawn(move || {
                for &i in second {
                    h1.send(i).unwrap();
                }
            });
            let mut s2 = Sticky;
            Service::new(trace.catalog().clone(), &ci, skus::fleet_a())
                .serve(source, &mut s2)
                .unwrap()
        });
        assert_same_run(&batch, &live);
    }

    #[test]
    fn out_of_order_arrival_is_a_typed_error() {
        let catalog = WorkloadCatalog::sebs();
        let ci = CarbonIntensityTrace::constant(300.0, 600);
        // A sorted `Trace` cannot even express disorder; raw lanes can.
        let (handles, source) = live_lanes(1, 4);
        handles[0]
            .send(Invocation {
                func: FunctionId(0),
                t_ms: 500,
            })
            .unwrap();
        handles[0]
            .send(Invocation {
                func: FunctionId(0),
                t_ms: 100,
            })
            .unwrap();
        drop(handles);
        let mut s = Sticky;
        let err = Service::new(catalog, &ci, skus::fleet_a())
            .serve(source, &mut s)
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::OutOfOrder {
                t_ms: 100,
                horizon_ms: 500
            }
        );
    }

    #[test]
    fn ci_exhaustion_is_a_typed_error() {
        // 2 minutes of CI, an arrival beyond it.
        let ci = CarbonIntensityTrace::constant(300.0, 2);
        let (handles, source) = live_lanes(1, 2);
        handles[0]
            .send(Invocation {
                func: FunctionId(0),
                t_ms: 10 * 60_000,
            })
            .unwrap();
        drop(handles);
        let mut s = Sticky;
        let err = Service::new(WorkloadCatalog::sebs(), &ci, skus::fleet_a())
            .serve(source, &mut s)
            .unwrap_err();
        assert!(matches!(err, ServeError::CiTooShort { t_ms: 600_000, .. }));
    }

    #[test]
    fn unknown_function_is_a_typed_error() {
        let catalog = WorkloadCatalog::new(vec![FunctionProfile::new("only", 100, 100, 128, 0.5)]);
        let ci = CarbonIntensityTrace::constant(300.0, 600);
        let (handles, source) = live_lanes(1, 2);
        handles[0]
            .send(Invocation {
                func: FunctionId(5),
                t_ms: 0,
            })
            .unwrap();
        drop(handles);
        let mut s = Sticky;
        let err = Service::new(catalog, &ci, skus::fleet_a())
            .serve(source, &mut s)
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownFunction {
                func: FunctionId(5),
                catalog_len: 1
            }
        );
    }

    #[test]
    fn empty_stream_yields_empty_metrics() {
        let ci = CarbonIntensityTrace::constant(300.0, 600);
        let (handles, source) = live_lanes(1, 1);
        drop(handles);
        let mut s = Sticky;
        let m = Service::new(WorkloadCatalog::sebs(), &ci, skus::fleet_a())
            .serve(source, &mut s)
            .unwrap();
        assert!(m.records.is_empty());
    }
}

/root/repo/target/debug/examples/azure_trace_replay-c0328f8ab3f346d9.d: examples/azure_trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libazure_trace_replay-c0328f8ab3f346d9.rmeta: examples/azure_trace_replay.rs Cargo.toml

examples/azure_trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Integration: the Azure CSV path — parse, map to the SeBS catalog,
//! replay, account.

use ecolife::prelude::*;
use ecolife::trace::azure;

fn csv(minutes: usize, rows: &[(&str, &str, u64, u64, &[u32])]) -> String {
    let mut head = String::from("HashOwner,HashApp,HashFunction,Trigger,duration_ms,memory_mib");
    for m in 1..=minutes {
        head.push_str(&format!(",{m}"));
    }
    head.push('\n');
    for (name, trigger, dur, mem, counts) in rows {
        assert_eq!(counts.len(), minutes);
        head.push_str(&format!("own,app,{name},{trigger},{dur},{mem}"));
        for c in *counts {
            head.push_str(&format!(",{c}"));
        }
        head.push('\n');
    }
    head
}

#[test]
fn parse_map_replay_roundtrip() {
    let text = csv(
        10,
        &[
            ("hot", "http", 2_000, 512, &[3, 2, 3, 2, 3, 2, 3, 2, 3, 2]),
            (
                "timer",
                "timer",
                5_500,
                256,
                &[1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
            ),
            (
                "big",
                "queue",
                12_000,
                4_000,
                &[0, 1, 0, 0, 0, 0, 0, 1, 0, 0],
            ),
        ],
    );
    let catalog = WorkloadCatalog::sebs();
    let trace = azure::parse_trace(&text, &catalog, 5).unwrap();

    // Counts preserved.
    assert_eq!(trace.len(), 25 + 2 + 2);
    // Mapping is closest-match: the 12 s / 4 GiB function must resolve to
    // dna-visualization.
    let (dna, _) = catalog.by_name("504.dna-visualization").unwrap();
    assert_eq!(
        trace.invocations().iter().filter(|i| i.func == dna).count(),
        2
    );

    // The replay runs and the hot function converts to warm starts.
    let ci = CarbonIntensityTrace::constant(250.0, 30);
    let fleet = skus::fleet_a();
    let mut eco = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let (summary, metrics) = run_scheme(&trace, &ci, &fleet, &mut eco);
    assert_eq!(summary.invocations, trace.len());
    assert!(
        metrics.warm_starts() > trace.len() / 2,
        "warm {}/{}",
        metrics.warm_starts(),
        trace.len()
    );
}

#[test]
fn malformed_csv_is_rejected_loudly() {
    let catalog = WorkloadCatalog::sebs();
    for bad in [
        "",
        "a,b,c,d\n1,2,3,4",
        "HashOwner,HashApp,HashFunction,Trigger,1\nx,y,z,t,notanumber",
        "HashOwner,HashApp,HashFunction,Trigger,1\nx,y,z,t", // short row
    ] {
        assert!(
            azure::parse_trace(bad, &catalog, 0).is_err(),
            "accepted {bad:?}"
        );
    }
}

#[test]
fn replay_is_deterministic_per_seed() {
    let text = csv(5, &[("f", "http", 1_000, 256, &[2, 2, 2, 2, 2])]);
    let catalog = WorkloadCatalog::sebs();
    let a = azure::parse_trace(&text, &catalog, 9).unwrap();
    let b = azure::parse_trace(&text, &catalog, 9).unwrap();
    assert_eq!(a, b);
    let c = azure::parse_trace(&text, &catalog, 10).unwrap();
    assert_ne!(a, c);
}

//! Online per-function arrival prediction (no future knowledge).
//!
//! Wraps the inter-arrival ring from `ecolife-trace` and the ΔF window
//! tracker into the quantities the KDM fitness needs.

use ecolife_trace::stats::{DeltaTracker, InterArrivalStats};

/// Arrival model for one function.
#[derive(Debug, Clone)]
pub struct FunctionPredictor {
    stats: InterArrivalStats,
    deltas: DeltaTracker,
}

impl FunctionPredictor {
    pub fn new(delta_window_ms: u64) -> Self {
        FunctionPredictor {
            stats: InterArrivalStats::with_default_capacity(),
            deltas: DeltaTracker::new(delta_window_ms),
        }
    }

    /// Record an invocation arrival.
    pub fn record_arrival(&mut self, t_ms: u64) {
        self.stats.record_arrival(t_ms);
        self.deltas.record(t_ms);
    }

    /// `P(next gap ≤ k_ms)` from history.
    ///
    /// Before any gap has been observed, an optimistic prior of 0.75 is
    /// used: production serverless functions that appear once are very
    /// likely to re-appear shortly (the Azure characterization [26]), and
    /// the cost of one wasted keep-alive is far below the cost of a
    /// stream of cold starts while the swarm warms up.
    pub fn p_warm(&self, k_ms: u64) -> f64 {
        if self.stats.sample_count() == 0 {
            return 0.75;
        }
        self.stats.p_within(k_ms)
    }

    /// `E[min(gap, k_ms)]` from history.
    pub fn expected_resident_ms(&self, k_ms: u64) -> f64 {
        self.stats.expected_resident_ms(k_ms)
    }

    /// Normalized |ΔF| ∈ [0, 1] — this function's invocation-rate change
    /// signal for the DPSO perception.
    pub fn delta_f(&self) -> f64 {
        self.deltas.normalized_delta()
    }

    /// Total arrivals observed.
    pub fn arrivals(&self) -> u64 {
        self.stats.total_arrivals()
    }

    /// Mean observed inter-arrival gap, if any.
    pub fn mean_gap_ms(&self) -> Option<f64> {
        self.stats.mean_gap_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_regular_arrivals() {
        let mut p = FunctionPredictor::new(60_000);
        for i in 0..20u64 {
            p.record_arrival(i * 30_000); // every 30 s
        }
        assert_eq!(p.arrivals(), 20);
        assert!(p.p_warm(60_000) > 0.99);
        assert!(p.p_warm(10_000) < 0.01);
        assert!((p.expected_resident_ms(60_000) - 30_000.0).abs() < 1.0);
        assert!((p.mean_gap_ms().unwrap() - 30_000.0).abs() < 1.0);
    }

    #[test]
    fn optimistic_prior_before_history() {
        let p = FunctionPredictor::new(60_000);
        assert_eq!(p.p_warm(600_000), 0.75);
        assert_eq!(p.expected_resident_ms(600_000), 300_000.0);
        assert_eq!(p.delta_f(), 0.0);
    }

    #[test]
    fn delta_f_fires_on_rate_change() {
        let mut p = FunctionPredictor::new(60_000);
        // Minute 0: 10 arrivals; minute 1: 1 arrival; minute 2 rolls.
        for i in 0..10u64 {
            p.record_arrival(i * 1_000);
        }
        p.record_arrival(70_000);
        p.record_arrival(130_000);
        assert!(p.delta_f() > 0.5, "ΔF {}", p.delta_f());
    }
}

/root/repo/target/debug/deps/ecolife_trace-63627d8f7e76f6a1.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libecolife_trace-63627d8f7e76f6a1.rmeta: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

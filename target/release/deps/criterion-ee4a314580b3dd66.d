/root/repo/target/release/deps/criterion-ee4a314580b3dd66.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-ee4a314580b3dd66: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:

/root/repo/target/debug/deps/optimizer_properties-5530376ecec0d94c.d: crates/pso/tests/optimizer_properties.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_properties-5530376ecec0d94c.rmeta: crates/pso/tests/optimizer_properties.rs Cargo.toml

crates/pso/tests/optimizer_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

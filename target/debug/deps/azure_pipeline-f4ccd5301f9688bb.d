/root/repo/target/debug/deps/azure_pipeline-f4ccd5301f9688bb.d: tests/azure_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libazure_pipeline-f4ccd5301f9688bb.rmeta: tests/azure_pipeline.rs Cargo.toml

tests/azure_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

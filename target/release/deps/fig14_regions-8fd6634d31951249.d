/root/repo/target/release/deps/fig14_regions-8fd6634d31951249.d: crates/bench/benches/fig14_regions.rs

/root/repo/target/release/deps/fig14_regions-8fd6634d31951249: crates/bench/benches/fig14_regions.rs

crates/bench/benches/fig14_regions.rs:

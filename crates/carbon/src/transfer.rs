//! Pricing a cross-node container migration.
//!
//! The replay engine can move a warm container between nodes (warm-pool
//! displacement, ledger reconciliation, the periodic re-placement pass,
//! node drains). Moving state is not free: the image bytes cross the
//! network (egress energy, charged as grams at the **source** region's
//! carbon intensity at transfer time — that is the grid that powers the
//! send side), and the displaced function's next service eats the
//! transfer latency before it can start warm.
//!
//! [`TransferCost::free`] is the default everywhere: zero energy, zero
//! latency. Because every charge site adds `x + 0.0` and every latency
//! site adds `+ 0`, a free-priced run is bit-identical to an engine
//! without the pricing code — the golden traces pin this.

/// Price of moving one warm container between nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCost {
    /// Network egress energy per MiB moved, in kWh. Grams are derived
    /// at the source region's CI at transfer time.
    pub egress_kwh_per_mib: f64,
    /// Latency added to the displaced function's next service (the
    /// container is unusable while its state is in flight).
    pub latency_ms: u64,
}

impl TransferCost {
    /// The pre-pricing engine: migration costs nothing. Default.
    pub const fn free() -> Self {
        TransferCost {
            egress_kwh_per_mib: 0.0,
            latency_ms: 0,
        }
    }

    /// A representative WAN price: ~0.06 kWh per GB of inter-region
    /// egress (network-transmission intensity estimates commonly land
    /// at 0.01–0.1 kWh/GB) and a 250 ms re-warm penalty.
    pub const fn wan() -> Self {
        TransferCost {
            egress_kwh_per_mib: 0.06 / 1024.0,
            latency_ms: 250,
        }
    }

    /// Whether this is exactly [`TransferCost::free`] — the engine's
    /// fast path back to pre-pricing behavior.
    pub fn is_free(&self) -> bool {
        self.egress_kwh_per_mib == 0.0 && self.latency_ms == 0
    }

    /// Egress energy to move `memory_mib` MiB.
    pub fn energy_kwh(&self, memory_mib: u64) -> f64 {
        self.egress_kwh_per_mib * memory_mib as f64
    }

    /// Egress carbon to move `memory_mib` MiB out of a grid currently
    /// at `source_ci` gCO2/kWh.
    pub fn grams(&self, memory_mib: u64, source_ci: f64) -> f64 {
        self.energy_kwh(memory_mib) * source_ci
    }
}

impl Default for TransferCost {
    fn default() -> Self {
        TransferCost::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_is_the_default_and_costs_nothing() {
        let free = TransferCost::default();
        assert!(free.is_free());
        assert_eq!(free.grams(10_240, 400.0), 0.0);
        assert_eq!(free.energy_kwh(10_240), 0.0);
        assert_eq!(free.latency_ms, 0);
    }

    #[test]
    fn priced_grams_scale_with_size_and_source_ci() {
        let cost = TransferCost {
            egress_kwh_per_mib: 1e-4,
            latency_ms: 100,
        };
        assert!(!cost.is_free());
        let g = cost.grams(2048, 400.0);
        assert_eq!(g, 1e-4 * 2048.0 * 400.0);
        // Dirtier source grid ⇒ strictly more egress carbon.
        assert!(cost.grams(2048, 500.0) > g);
        // Bigger container ⇒ strictly more.
        assert!(cost.grams(4096, 400.0) > g);
    }

    #[test]
    fn wan_preset_is_priced() {
        assert!(!TransferCost::wan().is_free());
        assert!(TransferCost::wan().latency_ms > 0);
    }
}

//! Simulated Annealing comparator (Sec. IV-C: "initial temperature of
//! 100, a stop temperature of 1, and a temperature reduction factor of
//! 0.9").
//!
//! Each [`Optimizer::step`] performs one temperature epoch: a batch of
//! neighbour proposals at the current temperature followed by geometric
//! cooling. Once the stop temperature is reached the walk keeps proposing
//! at the floor temperature (pure hill-climbing), so `step` stays safe to
//! call in an online loop.

use crate::space::SearchSpace;
use crate::Optimizer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SA hyper-parameters; defaults match the paper's comparison setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    pub initial_temp: f64,
    pub stop_temp: f64,
    pub cooling_factor: f64,
    /// Proposals per temperature epoch.
    pub moves_per_epoch: usize,
    /// Neighbour step σ as a fraction of each dimension's extent.
    pub step_sigma_frac: f64,
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temp: 100.0,
            stop_temp: 1.0,
            cooling_factor: 0.9,
            moves_per_epoch: 15,
            step_sigma_frac: 0.15,
            seed: 0x5a_5eed,
        }
    }
}

/// The annealing walk.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    space: SearchSpace,
    config: SaConfig,
    current: Vec<f64>,
    current_fitness: f64,
    best_position: Vec<f64>,
    best_fitness: f64,
    temperature: f64,
    rng: SmallRng,
    epochs: u64,
}

impl SimulatedAnnealing {
    pub fn new(space: SearchSpace, config: SaConfig) -> Self {
        assert!(config.initial_temp > config.stop_temp);
        assert!((0.0..1.0).contains(&config.cooling_factor));
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let current = space.sample(&mut rng);
        SimulatedAnnealing {
            best_position: current.clone(),
            best_fitness: f64::INFINITY,
            current_fitness: f64::INFINITY,
            temperature: config.initial_temp,
            space,
            config,
            current,
            rng,
            epochs: 0,
        }
    }

    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    fn propose(&mut self) -> Vec<f64> {
        let mut cand = self.current.clone();
        for (d, x) in cand.iter_mut().enumerate() {
            let sigma = self.space.extent(d) * self.config.step_sigma_frac;
            let u1: f64 = self.rng.gen_range(1e-12..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *x += sigma * z;
        }
        self.space.clamp(&mut cand);
        cand
    }
}

impl Optimizer for SimulatedAnnealing {
    fn step<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F) {
        if self.current_fitness.is_infinite() {
            self.current_fitness = fitness(&self.current);
            if self.current_fitness < self.best_fitness {
                self.best_fitness = self.current_fitness;
                self.best_position.clone_from(&self.current);
            }
        }
        for _ in 0..self.config.moves_per_epoch {
            let cand = self.propose();
            let f = fitness(&cand);
            let delta = f - self.current_fitness;
            let accept = delta <= 0.0 || {
                let p = (-delta / self.temperature.max(1e-12)).exp();
                self.rng.gen::<f64>() < p
            };
            if accept {
                self.current = cand;
                self.current_fitness = f;
                if f < self.best_fitness {
                    self.best_fitness = f;
                    self.best_position.clone_from(&self.current);
                }
            }
        }
        // Geometric cooling down to the stop temperature.
        self.temperature =
            (self.temperature * self.config.cooling_factor).max(self.config.stop_temp);
        self.epochs += 1;
    }

    fn best_position(&self) -> &[f64] {
        &self.best_position
    }

    fn best_fitness(&self) -> f64 {
        self.best_fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn improves_on_sphere() {
        let space = SearchSpace::new(vec![(-10.0, 10.0); 3]);
        let mut sa = SimulatedAnnealing::new(space, SaConfig::default());
        sa.run(&sphere, 80);
        assert!(sa.best_fitness() < 1.0, "fitness {}", sa.best_fitness());
    }

    #[test]
    fn temperature_cools_geometrically_to_floor() {
        let space = SearchSpace::new(vec![(-1.0, 1.0)]);
        let mut sa = SimulatedAnnealing::new(space, SaConfig::default());
        assert_eq!(sa.temperature(), 100.0);
        sa.step(&sphere);
        assert!((sa.temperature() - 90.0).abs() < 1e-9);
        // ~44 epochs reach the floor of 1.0 (0.9^44 ≈ 0.0097).
        sa.run(&sphere, 60);
        assert_eq!(sa.temperature(), 1.0);
    }

    #[test]
    fn monotone_best() {
        let space = SearchSpace::new(vec![(-5.0, 5.0); 2]);
        let mut sa = SimulatedAnnealing::new(space, SaConfig::default());
        let mut last = f64::INFINITY;
        for _ in 0..30 {
            sa.step(&sphere);
            assert!(sa.best_fitness() <= last);
            last = sa.best_fitness();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::new(vec![(-5.0, 5.0); 2]);
        let run = |seed| {
            let mut sa = SimulatedAnnealing::new(
                space.clone(),
                SaConfig {
                    seed,
                    ..Default::default()
                },
            );
            sa.run(&sphere, 20)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn stays_in_space() {
        let space = SearchSpace::new(vec![(0.0, 1.0), (0.0, 10.0)]);
        let mut sa = SimulatedAnnealing::new(space.clone(), SaConfig::default());
        for _ in 0..40 {
            sa.step(&sphere);
            assert!(space.contains(&sa.current));
        }
    }

    #[test]
    fn paper_defaults() {
        let c = SaConfig::default();
        assert_eq!(c.initial_temp, 100.0);
        assert_eq!(c.stop_temp, 1.0);
        assert_eq!(c.cooling_factor, 0.9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_temperatures() {
        SimulatedAnnealing::new(
            SearchSpace::new(vec![(0.0, 1.0)]),
            SaConfig {
                initial_temp: 1.0,
                stop_temp: 10.0,
                ..Default::default()
            },
        );
    }
}

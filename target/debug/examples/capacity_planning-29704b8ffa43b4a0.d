/root/repo/target/debug/examples/capacity_planning-29704b8ffa43b4a0.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-29704b8ffa43b4a0: examples/capacity_planning.rs

examples/capacity_planning.rs:

/root/repo/target/release/deps/proptest-c7df7b3bcc017d06.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c7df7b3bcc017d06.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c7df7b3bcc017d06.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:

/root/repo/target/debug/deps/fig4_oracle_gap-9ee2d37d4add8f41.d: crates/bench/benches/fig4_oracle_gap.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_oracle_gap-9ee2d37d4add8f41.rmeta: crates/bench/benches/fig4_oracle_gap.rs Cargo.toml

crates/bench/benches/fig4_oracle_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/optimizer_properties-167a4129da03f7b0.d: crates/pso/tests/optimizer_properties.rs

/root/repo/target/release/deps/optimizer_properties-167a4129da03f7b0: crates/pso/tests/optimizer_properties.rs

crates/pso/tests/optimizer_properties.rs:

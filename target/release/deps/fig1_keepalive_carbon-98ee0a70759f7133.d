/root/repo/target/release/deps/fig1_keepalive_carbon-98ee0a70759f7133.d: crates/bench/benches/fig1_keepalive_carbon.rs

/root/repo/target/release/deps/fig1_keepalive_carbon-98ee0a70759f7133: crates/bench/benches/fig1_keepalive_carbon.rs

crates/bench/benches/fig1_keepalive_carbon.rs:

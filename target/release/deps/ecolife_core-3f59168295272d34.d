/root/repo/target/release/deps/ecolife_core-3f59168295272d34.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs Cargo.toml

/root/repo/target/release/deps/libecolife_core-3f59168295272d34.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/fixed.rs:
crates/core/src/baselines/oracle.rs:
crates/core/src/config.rs:
crates/core/src/ecolife.rs:
crates/core/src/objective.rs:
crates/core/src/predictor.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/warmpool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

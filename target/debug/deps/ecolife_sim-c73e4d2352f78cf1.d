/root/repo/target/debug/deps/ecolife_sim-c73e4d2352f78cf1.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/debug/deps/libecolife_sim-c73e4d2352f78cf1.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/debug/deps/libecolife_sim-c73e4d2352f78cf1.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:

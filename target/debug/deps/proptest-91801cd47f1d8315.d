/root/repo/target/debug/deps/proptest-91801cd47f1d8315.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-91801cd47f1d8315.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-91801cd47f1d8315.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:

//! Region-sweep equivalence and determinism (ISSUE 4).
//!
//! The multi-region fleet claim is exact, not approximate: one fleet
//! built from five per-region sub-fleets, driven by a
//! [`PartitionedScheduler`], must replay the Fig. 14 study
//! **bit-identically** to five standalone single-region runs — per
//! record, per gram — for every scheduler family (EcoLife, the fixed
//! policies, the Oracle brute force). And the multi-region engine path
//! must stay deterministic under sharding at any worker-thread count.

use ecolife::prelude::*;
use ecolife::sim::{InvocationRecord, RunMetrics, ShardOptions};
use ecolife::telemetry::diff::first_divergence;

const SEED: u64 = 0x000F_1614;
const MINUTES: usize = 70;

fn workload() -> Trace {
    SynthTraceConfig {
        n_functions: 8,
        duration_min: 60,
        seed: SEED,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs())
}

fn region_ci(region: Region) -> CarbonIntensityTrace {
    CarbonIntensityTrace::synthetic(region, MINUTES, SEED)
}

fn sub_fleet(region: Region) -> Fleet {
    skus::fleet_a().with_uniform_region(region)
}

fn bundle() -> CiBundle {
    CiBundle::new(Region::ALL.iter().map(|&r| (r, region_ci(r))).collect()).unwrap()
}

/// Run the same workload standalone per region and once as a partitioned
/// multi-region fleet; assert the records agree bit-for-bit.
fn assert_region_equivalence<S: Scheduler, F: Fn(Region) -> S>(make: F) {
    let trace = workload();

    // Five standalone single-region runs (the legacy Fig. 14 sweep).
    let standalone: Vec<RunMetrics> = Region::ALL
        .iter()
        .map(|&r| {
            let fleet = sub_fleet(r);
            let ci = region_ci(r);
            Simulation::new(&trace, &ci, fleet).run(&mut make(r))
        })
        .collect();

    // One multi-region fleet run over the merged workload.
    let mut sched = PartitionedScheduler::new(
        Region::ALL
            .iter()
            .map(|&r| Partition {
                fleet: sub_fleet(r),
                ci: region_ci(r),
                trace: trace.clone(),
                scheduler: make(r),
            })
            .collect(),
    );
    let merged_trace = sched.merged_trace();
    let merged_fleet = sched.merged_fleet();
    let b = bundle();
    let combined = Simulation::try_new_regional(&merged_trace, &b, merged_fleet)
        .unwrap()
        .run(&mut sched);
    assert_eq!(combined.invocations(), 5 * trace.len());

    // Translate each combined record back into its region's local ids
    // and demand bit-identity with the standalone run.
    let n_funcs = trace.catalog().len() as u32;
    let mut seen = vec![0usize; Region::ALL.len()];
    for rec in &combined.records {
        let p = (rec.func.0 / n_funcs) as usize;
        let local = InvocationRecord {
            func: FunctionId(rec.func.0 - p as u32 * n_funcs),
            exec_location: NodeId(rec.exec_location.0 - 2 * p as u32),
            ..*rec
        };
        let expected = standalone[p].records[seen[p]];
        assert_eq!(
            local,
            expected,
            "region {} record {} diverged from the standalone run",
            Region::ALL[p],
            seen[p],
        );
        seen[p] += 1;
    }
    assert!(seen.iter().all(|&n| n == trace.len()));

    // Totals (and therefore the Fig. 14 comparison itself) follow.
    for (p, m) in standalone.iter().enumerate() {
        let by_region = combined.carbon_g_by_region(&sched.merged_fleet());
        let (region, combined_g) = by_region[p];
        assert_eq!(region, Region::ALL[p]);
        assert!(
            (combined_g - m.total_carbon_g()).abs() < 1e-9,
            "{region}: {combined_g} vs {}",
            m.total_carbon_g()
        );
    }
}

#[test]
fn partitioned_ecolife_matches_five_standalone_runs() {
    assert_region_equivalence(|r| EcoLife::new(sub_fleet(r), EcoLifeConfig::default()));
}

#[test]
fn partitioned_fixed_policy_matches_five_standalone_runs() {
    assert_region_equivalence(|_| FixedPolicy::new_only());
}

#[test]
fn partitioned_oracle_matches_five_standalone_runs() {
    // The Oracle consumes per-invocation future knowledge through
    // `ctx.index`, so this additionally pins the wrapper's local-index
    // translation.
    assert_region_equivalence(|r| BruteForce::oracle(sub_fleet(r), region_ci(r)));
}

#[test]
fn multi_region_sharded_replay_is_thread_invariant() {
    // A free (unpartitioned) EcoLife over the ten-node five-region
    // fleet: sequential vs `run_sharded` at worker threads {1, 2, 4}
    // must be bit-identical — the per-region ΔCI state is a pure
    // function of (t, region), so shard membership cannot leak into
    // decisions. Compared on the full hash-chained telemetry stream:
    // one chain-tip equality covers every record, gram, and expiry.
    let trace = workload();
    let fleet = skus::fleet_five_regions();
    let b = bundle();

    let mut seq_sink = CaptureSink::default();
    let sequential = Simulation::try_new_regional(&trace, &b, fleet.clone())
        .unwrap()
        .run_with_sink(
            &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
            &mut seq_sink,
        );

    for threads in [1, 2, 4] {
        let mut sink = CaptureSink::default();
        let sharded = Simulation::try_new_regional(&trace, &b, fleet.clone())
            .unwrap()
            .run_sharded_with_sink(
                |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &ShardOptions::new(8).with_threads(threads),
                &mut sink,
            );
        assert_eq!(sharded.reconcile_revocations, 0, "uncontended workload");
        assert_eq!(sequential.evicted_functions, sharded.evicted_functions);
        assert_eq!(sequential.transfers, sharded.transfers);
        if let Some(d) = first_divergence(&seq_sink.lines(), &sink.lines()) {
            panic!("threads={threads} diverged from the sequential multi-region run: {d:?}");
        }
        assert_eq!(sink.tip(), seq_sink.tip(), "threads={threads} chain tip");
    }
}

#[test]
fn partitioned_run_is_shardable_and_thread_invariant() {
    // The partitioned form of the Fig. 14 study itself, through
    // `run_sharded` at threads {1, 2, 4}: a byte-identical event stream
    // (and chain tip) against the sequential partitioned run.
    let trace = workload();
    let make = || {
        PartitionedScheduler::new(
            Region::ALL
                .iter()
                .map(|&r| Partition {
                    fleet: sub_fleet(r),
                    ci: region_ci(r),
                    trace: trace.clone(),
                    scheduler: EcoLife::new(sub_fleet(r), EcoLifeConfig::default()),
                })
                .collect(),
        )
    };
    let merged_trace = make().merged_trace();
    let merged_fleet = make().merged_fleet();
    let b = bundle();

    let mut seq_sink = CaptureSink::default();
    Simulation::try_new_regional(&merged_trace, &b, merged_fleet.clone())
        .unwrap()
        .run_with_sink(&mut make(), &mut seq_sink);
    for threads in [1, 2, 4] {
        let mut sink = CaptureSink::default();
        Simulation::try_new_regional(&merged_trace, &b, merged_fleet.clone())
            .unwrap()
            .run_sharded_with_sink(
                |_| make(),
                &ShardOptions::new(8).with_threads(threads),
                &mut sink,
            );
        if let Some(d) = first_divergence(&seq_sink.lines(), &sink.lines()) {
            panic!("threads={threads}: partitioned sharded stream diverged: {d:?}");
        }
        assert_eq!(sink.tip(), seq_sink.tip(), "threads={threads} chain tip");
    }
}

#[test]
fn cross_region_placement_beats_the_dirtiest_pinned_region() {
    // The new scenario axis: an EcoLife free to place across the
    // ten-node fleet must emit less carbon than the same workload
    // pinned entirely into the dirtiest grid (Florida, ~430 g/kWh).
    let trace = workload();
    let fleet = skus::fleet_five_regions();
    let b = bundle();
    let free = Simulation::try_new_regional(&trace, &b, fleet.clone())
        .unwrap()
        .run(&mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()));
    let fla_fleet = sub_fleet(Region::Florida);
    let pinned = Simulation::new(&trace, &region_ci(Region::Florida), fla_fleet.clone())
        .run(&mut EcoLife::new(fla_fleet, EcoLifeConfig::default()));
    assert!(
        free.total_carbon_g() < pinned.total_carbon_g(),
        "free {} vs Florida-pinned {}",
        free.total_carbon_g(),
        pinned.total_carbon_g()
    );
    // And the grid mix is what it traded on: every region it executed
    // in is cleaner than Florida's grid (with these profiles the EPDM
    // concentrates work onto the cleanest grids — that concentration
    // *is* the new placement axis).
    let regions_used: std::collections::HashSet<Region> = free
        .records
        .iter()
        .map(|r| fleet.node(r.exec_location).region)
        .collect();
    assert!(!regions_used.is_empty());
    for r in regions_used {
        assert!(
            b.get(r).unwrap().mean() < b.get(Region::Florida).unwrap().mean(),
            "executed in {r}, which is no cleaner than Florida"
        );
    }
}

//! The outer search: drive an optimizer (or exhaustive enumeration)
//! over the plan space, with the simulator-backed fitness inside.

use crate::fitness::{PlanEvaluator, PlanScore, PlannerConfig};
use crate::plan::FleetPlan;
use crate::space::PlanSpace;
use ecolife_carbon::CarbonIntensityTrace;
use ecolife_pso::{
    BatchOptimizer, GaConfig, GeneticAlgorithm, Optimizer, Pso, PsoConfig, SaConfig,
    SimulatedAnnealing,
};
use ecolife_trace::Trace;

/// Which outer search drives the plan space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgorithm {
    /// Every feasible plan, scored (batch-parallel). Exact; viable for
    /// small spaces and the ground truth the heuristics are tested
    /// against.
    Exhaustive,
    /// Particle Swarm Optimization; generations fan out in parallel.
    Pso,
    /// Genetic Algorithm; generations fan out in parallel.
    Ga,
    /// Simulated Annealing; inherently sequential, but every proposal
    /// still hits the memo cache.
    Sa,
}

impl SearchAlgorithm {
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgorithm::Exhaustive => "exhaustive",
            SearchAlgorithm::Pso => "PSO",
            SearchAlgorithm::Ga => "GA",
            SearchAlgorithm::Sa => "SA",
        }
    }
}

/// Outcome of one search.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    pub algorithm: &'static str,
    pub best_plan: FleetPlan,
    pub best_score: PlanScore,
    /// Candidate positions proposed by the search (before dedup).
    pub candidates: u64,
    /// Simulations actually run across the whole search so far (memo
    /// misses on this planner's shared cache).
    pub simulations: u64,
    /// Evaluations answered by the memo cache.
    pub cache_hits: u64,
}

impl PlanReport {
    /// One-line summary against a catalog.
    pub fn describe(&self, space: &PlanSpace) -> String {
        format!(
            "{:<10} best {} | fitness {:.2} g (sim {:.2} + embodied {:.2} + slo {:.2}) | p95 {} ms, warm {:.2} | {} sims, {} cache hits",
            self.algorithm,
            space.describe_plan(&self.best_plan),
            self.best_score.fitness_g,
            self.best_score.sim_carbon_g,
            self.best_score.provisioned_embodied_g,
            self.best_score.slo_penalty_g,
            self.best_score.p95_service_ms,
            self.best_score.warm_rate,
            self.simulations,
            self.cache_hits,
        )
    }
}

/// The capacity planner: a plan space bound to one workload and CI
/// trace, sharing one memo cache across every search run on it.
pub struct Planner<'a> {
    evaluator: PlanEvaluator<'a>,
}

impl<'a> Planner<'a> {
    pub fn new(
        space: PlanSpace,
        trace: &'a Trace,
        ci: &'a CarbonIntensityTrace,
        config: PlannerConfig,
    ) -> Self {
        Planner {
            evaluator: PlanEvaluator::new(space, trace, ci, config),
        }
    }

    /// Multi-region planner: see [`PlanEvaluator::new_regional`].
    pub fn new_regional(
        space: PlanSpace,
        trace: &'a Trace,
        bundle: &'a ecolife_carbon::CiBundle,
        config: PlannerConfig,
    ) -> Self {
        Planner {
            evaluator: PlanEvaluator::new_regional(space, trace, bundle, config),
        }
    }

    /// The underlying evaluator (cache statistics, direct scoring).
    pub fn evaluator(&self) -> &PlanEvaluator<'a> {
        &self.evaluator
    }

    fn space(&self) -> &PlanSpace {
        self.evaluator.space()
    }

    fn seed_for(&self, algorithm: SearchAlgorithm, restart: u32) -> u64 {
        // Decorrelate the outer search's RNG from the inner schedulers'
        // and from the other restarts.
        let salt = match algorithm {
            SearchAlgorithm::Exhaustive => 0x0,
            SearchAlgorithm::Pso => 0x9e37_79b9_7f4a_7c15,
            SearchAlgorithm::Ga => 0x6a09_e667_f3bc_c909,
            SearchAlgorithm::Sa => 0xbb67_ae85_84ca_a73b,
        };
        self.evaluator.config().seed ^ salt ^ (restart as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Run one search. `iters` is the per-restart iteration budget for
    /// the heuristic algorithms (generations for PSO/GA, temperature
    /// epochs for SA) and ignored by `Exhaustive`; heuristics run
    /// [`PlannerConfig::restarts`] independent restarts and keep the
    /// best.
    ///
    /// Deterministic for a fixed [`PlannerConfig::seed`], independent of
    /// thread count and of previous searches on this planner (the memo
    /// cache stores pure-function results, so warm entries change counts,
    /// never outcomes).
    pub fn search(&self, algorithm: SearchAlgorithm, iters: usize) -> PlanReport {
        if algorithm == SearchAlgorithm::Exhaustive {
            return self.search_exhaustive();
        }
        let restarts = self.evaluator.config().restarts.max(1);
        let mut best: Option<(FleetPlan, f64)> = None;
        let mut candidates = 0u64;
        for restart in 0..restarts {
            let (plan, proposed) = match algorithm {
                SearchAlgorithm::Pso => {
                    let mut pso = Pso::new(
                        self.space().search_space(),
                        PsoConfig {
                            seed: self.seed_for(algorithm, restart),
                            ..PsoConfig::default()
                        },
                    );
                    self.run_batched(&mut pso, iters)
                }
                SearchAlgorithm::Ga => {
                    let mut ga = GeneticAlgorithm::new(
                        self.space().search_space(),
                        GaConfig {
                            seed: self.seed_for(algorithm, restart),
                            ..GaConfig::default()
                        },
                    );
                    self.run_batched(&mut ga, iters)
                }
                SearchAlgorithm::Sa => self.run_sa(iters, restart),
                SearchAlgorithm::Exhaustive => unreachable!(),
            };
            candidates += proposed;
            // Compare restarts by fitness — safe for an infeasible
            // restart (graded penalty, no panic), so one collapsed swarm
            // cannot abort a search another restart has already won.
            // Strictly-better keeps the earliest restart on ties, which
            // keeps the result independent of restart count inflation.
            let fitness = self.evaluator.fitness(&plan);
            let better = best.as_ref().is_none_or(|(_, bf)| fitness < *bf);
            if better {
                best = Some((plan, fitness));
            }
        }
        let (best_plan, _) = best.expect("restarts >= 1");
        self.report(algorithm, best_plan, candidates)
    }

    /// Exact search: batch-score every feasible plan, argmin with the
    /// enumeration's deterministic lexicographic order breaking ties.
    fn search_exhaustive(&self) -> PlanReport {
        let plans = self.space().enumerate();
        assert!(!plans.is_empty(), "plan space has no feasible plan");
        let fitnesses = self.evaluator.fitness_batch(&plans);
        let mut best = 0;
        for (i, f) in fitnesses.iter().enumerate() {
            if *f < fitnesses[best] {
                best = i;
            }
        }
        self.report(
            SearchAlgorithm::Exhaustive,
            plans[best].clone(),
            plans.len() as u64,
        )
    }

    /// One optimizer run; returns its best decoded plan (feasible or
    /// not — the caller compares by fitness) and the number of candidate
    /// positions proposed.
    fn run_batched<O: BatchOptimizer>(&self, optimizer: &mut O, iters: usize) -> (FleetPlan, u64) {
        let candidates = std::cell::Cell::new(0u64);
        for _ in 0..iters.max(1) {
            optimizer.step_batched(&|batch: &[Vec<f64>]| {
                candidates.set(candidates.get() + batch.len() as u64);
                let plans: Vec<FleetPlan> = batch.iter().map(|x| self.space().decode(x)).collect();
                self.evaluator.fitness_batch(&plans)
            });
        }
        (
            self.space().decode(optimizer.best_position()),
            candidates.get(),
        )
    }

    /// One annealing run; returns its best decoded plan and the number
    /// of proposals evaluated (feasible or not).
    fn run_sa(&self, iters: usize, restart: u32) -> (FleetPlan, u64) {
        let mut sa = SimulatedAnnealing::new(
            self.space().search_space(),
            SaConfig {
                seed: self.seed_for(SearchAlgorithm::Sa, restart),
                ..SaConfig::default()
            },
        );
        let candidates = std::cell::Cell::new(0u64);
        let fitness = |x: &[f64]| {
            candidates.set(candidates.get() + 1);
            self.evaluator.fitness(&self.space().decode(x))
        };
        sa.run(&fitness, iters.max(1));
        (self.space().decode(sa.best_position()), candidates.get())
    }

    fn report(
        &self,
        algorithm: SearchAlgorithm,
        best_plan: FleetPlan,
        candidates: u64,
    ) -> PlanReport {
        assert!(
            self.space().is_feasible(&best_plan),
            "{}: every restart converged to an infeasible plan (best: {best_plan:?}) — \
             the search never found the feasible region; widen the space or raise iters",
            algorithm.name()
        );
        PlanReport {
            algorithm: algorithm.name(),
            best_score: self.evaluator.score(&best_plan),
            best_plan,
            candidates,
            simulations: self.evaluator.simulations(),
            cache_hits: self.evaluator.cache_hits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_core::EcoLifeConfig;
    use ecolife_hw::Sku;
    use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

    fn setup() -> (Trace, CarbonIntensityTrace) {
        let trace = SynthTraceConfig {
            n_functions: 6,
            duration_min: 30,
            ..SynthTraceConfig::small(19)
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(280.0, 60);
        (trace, ci)
    }

    fn tiny_space() -> PlanSpace {
        PlanSpace::new(vec![Sku::I3Metal, Sku::M5znMetal], 1, 2, vec![4_096, 8_192])
    }

    fn quick_config() -> PlannerConfig {
        PlannerConfig {
            scheduler: EcoLifeConfig {
                pso_iters: 2,
                ..EcoLifeConfig::default()
            },
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn exhaustive_scores_every_plan_once() {
        let (trace, ci) = setup();
        let planner = Planner::new(tiny_space(), &trace, &ci, quick_config());
        let report = planner.search(SearchAlgorithm::Exhaustive, 0);
        // {0,1}² totals in [1,2]: 3 count vectors × 2 budgets = 6 plans.
        assert_eq!(report.candidates, 6);
        assert_eq!(report.simulations, 6);
        assert!(planner.evaluator().space().is_feasible(&report.best_plan));
        // Best really is the minimum over the enumeration.
        for plan in planner.evaluator().space().enumerate() {
            assert!(report.best_score.fitness_g <= planner.evaluator().score(&plan).fitness_g);
        }
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let (trace, ci) = setup();
        for algo in [
            SearchAlgorithm::Pso,
            SearchAlgorithm::Ga,
            SearchAlgorithm::Sa,
        ] {
            let run = || Planner::new(tiny_space(), &trace, &ci, quick_config()).search(algo, 12);
            let (a, b) = (run(), run());
            assert_eq!(
                a.best_plan, b.best_plan,
                "{} not deterministic",
                a.algorithm
            );
            assert_eq!(a.best_score, b.best_score);
            assert_eq!(a.simulations, b.simulations);
        }
    }

    #[test]
    fn second_search_rides_the_shared_cache() {
        let (trace, ci) = setup();
        let planner = Planner::new(tiny_space(), &trace, &ci, quick_config());
        let first = planner.search(SearchAlgorithm::Exhaustive, 0);
        let second = planner.search(SearchAlgorithm::Pso, 10);
        // PSO proposed candidates but the exhaustive pass already
        // simulated the whole space: no new simulations were needed.
        assert_eq!(second.simulations, first.simulations);
        assert!(second.cache_hits > 0);
        assert_eq!(second.best_score.fitness_g, first.best_score.fitness_g);
    }
}

/root/repo/target/debug/deps/ecolife_trace-2cd206458d244137.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_trace-2cd206458d244137.rmeta: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

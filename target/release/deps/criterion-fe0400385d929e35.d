/root/repo/target/release/deps/criterion-fe0400385d929e35.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fe0400385d929e35.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fe0400385d929e35.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:

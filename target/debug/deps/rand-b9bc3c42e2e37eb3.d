/root/repo/target/debug/deps/rand-b9bc3c42e2e37eb3.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b9bc3c42e2e37eb3.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b9bc3c42e2e37eb3.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

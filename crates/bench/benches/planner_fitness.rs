//! Capacity-planner fitness hot path.
//!
//! One fitness evaluation is a full trace replay, so the planner lives
//! or dies by (a) the memo cache turning repeat candidates into hash
//! lookups and (b) `parallel_map` fanning a swarm generation out over
//! cores. This bench times both against the uncached baseline and
//! writes the headline numbers to `BENCH_planner.json` at the repo root
//! so the planner's hot path has a tracked trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecolife_bench::report::BenchJson;
use ecolife_carbon::CarbonIntensityTrace;
use ecolife_hw::Sku;
use ecolife_planner::{FleetPlan, PlanEvaluator, PlanSpace, PlannerConfig};
use ecolife_trace::{SynthTraceConfig, Trace, WorkloadCatalog};
use std::time::Instant;

/// The workload seed of the planner fixture.
const SEED: u64 = 41;

fn setup() -> (Trace, CarbonIntensityTrace) {
    let trace = SynthTraceConfig {
        n_functions: 8,
        duration_min: 45,
        seed: SEED,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::constant(300.0, 90);
    (trace, ci)
}

fn space() -> PlanSpace {
    PlanSpace::new(
        vec![Sku::I3Metal, Sku::M5znMetal],
        2,
        3,
        vec![4 * 1024, 8 * 1024],
    )
}

fn evaluator<'a>(
    trace: &'a Trace,
    ci: &'a CarbonIntensityTrace,
    parallel: bool,
) -> PlanEvaluator<'a> {
    PlanEvaluator::new(
        space(),
        trace,
        ci,
        PlannerConfig {
            parallel,
            ..PlannerConfig::default()
        },
    )
}

fn reference_plan() -> FleetPlan {
    FleetPlan {
        counts: vec![1, 1],
        mem_budget_mib: 8 * 1024,
    }
}

/// Mean wall-clock of `f` over `samples` runs (after one warm-up), in ns.
fn time_ns<F: FnMut()>(samples: u32, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed().as_nanos() as f64 / samples as f64
}

fn write_json(trace: &Trace, ci: &CarbonIntensityTrace) {
    let plan = reference_plan();
    let generation = space().enumerate();

    // Uncached single evaluation: a fresh evaluator every run.
    let uncached_ns = time_ns(5, || {
        let eval = evaluator(trace, ci, false);
        black_box(eval.score(&plan));
    });
    // Memoized single evaluation on a warm cache.
    let warm = evaluator(trace, ci, false);
    warm.score(&plan);
    let memoized_ns = time_ns(1_000, || {
        black_box(warm.score(&plan));
    });
    // One full generation (every feasible plan), parallel vs serial,
    // fresh evaluator per run so nothing is cached.
    let generation_parallel_ns = time_ns(3, || {
        let eval = evaluator(trace, ci, true);
        black_box(eval.fitness_batch(&generation));
    });
    let generation_serial_ns = time_ns(3, || {
        let eval = evaluator(trace, ci, false);
        black_box(eval.fitness_batch(&generation));
    });

    BenchJson::new("planner_fitness", SEED, trace.len())
        .int("generation_plans", generation.len() as u64)
        .float("uncached_eval_ms", uncached_ns / 1e6, 3)
        .float("memoized_eval_ns", memoized_ns, 0)
        .float("memo_speedup", uncached_ns / memoized_ns.max(1.0), 0)
        .float("generation_parallel_ms", generation_parallel_ns / 1e6, 3)
        .float("generation_serial_ms", generation_serial_ns / 1e6, 3)
        .float(
            "parallel_speedup",
            generation_serial_ns / generation_parallel_ns.max(1.0),
            2,
        )
        .write("BENCH_planner.json");
}

fn bench(c: &mut Criterion) {
    let (trace, ci) = setup();
    write_json(&trace, &ci);

    let plan = reference_plan();
    c.bench_function("planner/fitness_uncached", |b| {
        b.iter(|| {
            let eval = evaluator(&trace, &ci, false);
            black_box(eval.score(&plan))
        })
    });

    let warm = evaluator(&trace, &ci, false);
    warm.score(&plan);
    c.bench_function("planner/fitness_memoized", |b| {
        b.iter(|| black_box(warm.score(&plan)))
    });

    let generation = space().enumerate();
    c.bench_function("planner/generation_parallel", |b| {
        b.iter(|| {
            let eval = evaluator(&trace, &ci, true);
            black_box(eval.fitness_batch(&generation))
        })
    });
    c.bench_function("planner/generation_serial", |b| {
        b.iter(|| {
            let eval = evaluator(&trace, &ci, false);
            black_box(eval.fitness_batch(&generation))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/debug/deps/ecolife_bench-c7a966387f4e25c0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_bench-c7a966387f4e25c0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

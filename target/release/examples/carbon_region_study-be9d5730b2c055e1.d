/root/repo/target/release/examples/carbon_region_study-be9d5730b2c055e1.d: examples/carbon_region_study.rs Cargo.toml

/root/repo/target/release/examples/libcarbon_region_study-be9d5730b2c055e1.rmeta: examples/carbon_region_study.rs Cargo.toml

examples/carbon_region_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Fig. 11 — the warm-pool adjustment ablation across keep-alive memory
//! budgets ("old/new" GiB combinations).
//!
//! Paper shape: with adjustment, service time, carbon footprint, and the
//! number of evicted functions are consistently lower; at 15/15 GiB the
//! paper reports 7.9% service and 3.7% carbon savings and 17% more
//! functions kept alive.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_core::EcoLifeConfig;
use ecolife_hw::skus;
use std::hint::black_box;

fn print_fig11() {
    println!("\n=== Fig. 11: warm-pool adjustment across memory budgets ===");
    println!(
        "{:<9} {:<6} {:>13} {:>11} {:>9} {:>10}",
        "old/new", "adjust", "service ms", "carbon g", "evicted", "transfers"
    );
    for (old_gib, new_gib) in [(10u64, 10u64), (15, 15), (20, 20)] {
        let pair = skus::pair_a().with_keepalive_budgets_mib(old_gib * 1024, new_gib * 1024);
        let setup = EvalSetup::sized(48, 1_440, pair);
        let mut rows = Vec::new();
        for (label, cfg) in [
            ("yes", EcoLifeConfig::default()),
            (
                "no",
                EcoLifeConfig::default().without_warm_pool_adjustment(),
            ),
        ] {
            let s = setup.run(&mut setup.ecolife_with(cfg));
            println!(
                "{:<9} {:<6} {:>13} {:>11.2} {:>9} {:>10}",
                format!("{old_gib}/{new_gib}"),
                label,
                s.total_service_ms,
                s.total_carbon_g,
                s.evicted_functions,
                s.transfers
            );
            rows.push(s);
        }
        let saved_service =
            100.0 * (1.0 - rows[0].total_service_ms as f64 / rows[1].total_service_ms as f64);
        let saved_carbon = 100.0 * (1.0 - rows[0].total_carbon_g / rows[1].total_carbon_g);
        println!(
            "  -> adjustment saves {saved_service:.1}% service, {saved_carbon:.1}% carbon, avoids {} evictions",
            rows[1].evicted_functions.saturating_sub(rows[0].evicted_functions)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig11();
    let pair = skus::pair_a().with_keepalive_budgets_mib(4 * 1024, 4 * 1024);
    let setup = EvalSetup::sized(16, 180, pair);
    c.bench_function("fig11/pressured_run_quick", |b| {
        b.iter(|| black_box(setup.run(&mut setup.ecolife())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/release/deps/ecolife_pso-fe29f2506d6f6008.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/release/deps/libecolife_pso-fe29f2506d6f6008.rlib: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/release/deps/libecolife_pso-fe29f2506d6f6008.rmeta: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

//! Property tests on the warm pool: the memory ledger must stay exact
//! under arbitrary interleavings of insert / remove / expire.

use ecolife_sim::{WarmContainer, WarmPool};
use ecolife_trace::FunctionId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { func: u32, mem: u64, expiry: u64 },
    Remove { func: u32 },
    Expire { t: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..12, 64u64..2_048, 1u64..10_000).prop_map(|(func, mem, expiry)| Op::Insert {
            func,
            mem,
            expiry
        }),
        (0u32..12).prop_map(|func| Op::Remove { func }),
        (0u64..10_000).prop_map(|t| Op::Expire { t }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn memory_ledger_is_exact(capacity in 512u64..8_192, ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut pool = WarmPool::new(capacity);
        for op in ops {
            match op {
                Op::Insert { func, mem, expiry } => {
                    let _ = pool.insert(WarmContainer {
                        func: FunctionId(func),
                        memory_mib: mem,
                        warm_since_ms: 0,
                        expiry_ms: expiry,
                        origin_record: 0,
                        transfer_latency_ms: 0,
                    });
                }
                Op::Remove { func } => {
                    pool.remove(FunctionId(func));
                }
                Op::Expire { t } => {
                    pool.expire_until(t);
                }
            }
            // Invariants after every operation.
            let actual: u64 = pool.iter().map(|c| c.memory_mib).sum();
            prop_assert_eq!(pool.used_mib(), actual, "ledger drift");
            prop_assert!(pool.used_mib() <= pool.capacity_mib(), "over capacity");
            prop_assert_eq!(pool.len(), pool.iter().count());
        }
    }

    #[test]
    fn expire_until_is_complete_and_minimal(
        containers in prop::collection::vec((0u32..64, 64u64..256, 1u64..1_000), 1..30),
        t in 0u64..1_200,
    ) {
        let mut pool = WarmPool::new(1 << 30);
        for (func, mem, expiry) in &containers {
            let _ = pool.insert(WarmContainer {
                func: FunctionId(*func),
                memory_mib: *mem,
                warm_since_ms: 0,
                expiry_ms: *expiry,
                origin_record: 0,
                transfer_latency_ms: 0,
            });
        }
        let dead = pool.expire_until(t);
        // Everything returned was actually expired…
        prop_assert!(dead.iter().all(|c| c.expiry_ms <= t));
        // …and nothing expired remains.
        prop_assert!(pool.iter().all(|c| c.expiry_ms > t));
    }
}

/root/repo/target/release/deps/end_to_end-28baf30ffda432f3.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-28baf30ffda432f3: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/release/deps/fig13_hw_pairs-aa6391337864f48f.d: crates/bench/benches/fig13_hw_pairs.rs Cargo.toml

/root/repo/target/release/deps/libfig13_hw_pairs-aa6391337864f48f.rmeta: crates/bench/benches/fig13_hw_pairs.rs Cargo.toml

crates/bench/benches/fig13_hw_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/criterion-f39283bf4d55cad7.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-f39283bf4d55cad7.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fleet-c083c075575ca903.d: tests/fleet.rs

/root/repo/target/release/deps/fleet-c083c075575ca903: tests/fleet.rs

tests/fleet.rs:

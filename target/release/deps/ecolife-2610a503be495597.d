/root/repo/target/release/deps/ecolife-2610a503be495597.d: src/lib.rs

/root/repo/target/release/deps/libecolife-2610a503be495597.rlib: src/lib.rs

/root/repo/target/release/deps/libecolife-2610a503be495597.rmeta: src/lib.rs

src/lib.rs:

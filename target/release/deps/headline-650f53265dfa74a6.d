/root/repo/target/release/deps/headline-650f53265dfa74a6.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-650f53265dfa74a6: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:

/root/repo/target/debug/deps/proptest-0ac9878e0cfe2443.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0ac9878e0cfe2443.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

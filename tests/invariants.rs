//! Property-based invariants spanning crates: the carbon model, the
//! objective, the warm pool, and the simulator must hold structural
//! properties for *any* input, not just the calibrated points.

use ecolife::carbon::CarbonFootprint;
use ecolife::prelude::*;
use proptest::prelude::*;

fn any_generation() -> impl Strategy<Value = Generation> {
    prop_oneof![Just(Generation::Old), Just(Generation::New)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Carbon of any phase is non-negative, finite, and monotone in
    /// duration, memory, and CI.
    #[test]
    fn carbon_model_monotonicity(
        gen in any_generation(),
        mem in 64u64..8_192,
        dur in 1u64..3_600_000,
        ci in 20.0f64..900.0,
    ) {
        let pair = skus::pair_a();
        let node = pair.node(gen);
        let model = CarbonModel::default();
        for phase in [
            model.active_phase(node, mem, dur, ci),
            model.keepalive_phase(node, mem, dur, ci),
        ] {
            prop_assert!(phase.total_g().is_finite());
            prop_assert!(phase.operational_g >= 0.0 && phase.embodied_g >= 0.0);
        }
        let base = model.keepalive_phase(node, mem, dur, ci).total_g();
        prop_assert!(model.keepalive_phase(node, mem, dur * 2, ci).total_g() >= base);
        prop_assert!(model.keepalive_phase(node, mem * 2, dur, ci).total_g() >= base);
        prop_assert!(model.keepalive_phase(node, mem, dur, ci * 2.0).total_g() >= base);
    }

    /// The normalized objective is finite and non-negative over the whole
    /// decision grid for any profile and CI.
    #[test]
    fn objective_is_well_scaled(
        exec in 50u64..30_000,
        cold in 100u64..10_000,
        mem in 64u64..8_192,
        sens in 0.0f64..1.0,
        ci in 20.0f64..900.0,
        p in 0.0f64..1.0,
        gen in any_generation(),
        k_min in 0u64..=10,
    ) {
        let f = FunctionProfile::new("prop", exec, cold, mem, sens);
        let cost = CostModel::new(
            skus::pair_a(),
            CarbonModel::default(),
            0.5,
            0.5,
            50,
            600_000,
        );
        let k_ms = k_min * 60_000;
        let resident = p * k_ms as f64;
        let obj = cost.expected_objective(&f, gen, k_ms, p, resident, &cost.uniform_ci(ci), None);
        prop_assert!(obj.is_finite());
        prop_assert!(obj >= 0.0);
        prop_assert!(obj < 10.0, "objective {obj} badly normalized");
    }

    /// Warm starts are never slower than cold starts, anywhere.
    #[test]
    fn warm_never_slower_than_cold(
        exec in 1u64..60_000,
        cold in 0u64..20_000,
        sens in 0.0f64..1.0,
        gen in any_generation(),
    ) {
        let f = FunctionProfile::new("prop", exec, cold, 128, sens);
        let cost = CostModel::new(
            skus::pair_a(),
            CarbonModel::default(),
            0.5,
            0.5,
            50,
            600_000,
        );
        prop_assert!(cost.warm_service_ms(gen, &f) <= cost.cold_service_ms(gen, &f));
    }

    /// Footprint arithmetic: addition commutes and total always equals
    /// the component sum.
    #[test]
    fn footprint_arithmetic(
        a_op in 0.0f64..1e6, a_em in 0.0f64..1e6,
        b_op in 0.0f64..1e6, b_em in 0.0f64..1e6,
    ) {
        let a = CarbonFootprint::new(a_op, a_em);
        let b = CarbonFootprint::new(b_op, b_em);
        prop_assert_eq!(a + b, b + a);
        let s = a + b;
        prop_assert!((s.total_g() - (s.operational_g + s.embodied_g)).abs() < 1e-9);
    }

    /// A full simulation conserves invocations and never produces
    /// negative or non-finite aggregates, for arbitrary small workloads
    /// and pool budgets.
    #[test]
    fn simulation_conservation(
        seed in 0u64..500,
        n_funcs in 2usize..10,
        old_gib in 1u64..8,
        new_gib in 1u64..8,
    ) {
        let trace = SynthTraceConfig {
            n_functions: n_funcs,
            duration_min: 30,
            seed,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(250.0, 60);
        let fleet = Fleet::from(
            skus::pair_a().with_keepalive_budgets_mib(old_gib * 1024, new_gib * 1024),
        );
        let mut eco = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
        let (summary, metrics) = run_scheme(&trace, &ci, &fleet, &mut eco);
        prop_assert_eq!(summary.invocations, trace.len());
        prop_assert!(summary.total_carbon_g.is_finite() && summary.total_carbon_g >= 0.0);
        prop_assert!(summary.total_energy_kwh.is_finite() && summary.total_energy_kwh >= 0.0);
        prop_assert!(metrics.warm_starts() + metrics.cold_starts() == trace.len());
    }

    /// Oracle-family schemes never mis-handle arbitrary gap structures:
    /// warm starts only ever happen within a scheduled keep-alive.
    #[test]
    fn oracle_warm_starts_are_justified(seed in 0u64..200) {
        let trace = SynthTraceConfig {
            n_functions: 6,
            duration_min: 45,
            seed,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(300.0, 60);
        let fleet = skus::fleet_a();
        let mut oracle = BruteForce::oracle(fleet.clone(), ci.clone());
        let (_, metrics) = run_scheme(&trace, &ci, &fleet, &mut oracle);
        // A warm start implies a prior invocation of the same function.
        let mut seen = std::collections::HashSet::new();
        for r in &metrics.records {
            if r.warm {
                prop_assert!(seen.contains(&r.func), "warm start without history");
            }
            seen.insert(r.func);
        }
    }
}

/root/repo/target/debug/deps/ecolife_trace-b7233a01683562c3.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libecolife_trace-b7233a01683562c3.rlib: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libecolife_trace-b7233a01683562c3.rmeta: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

/root/repo/target/debug/deps/trace_properties-fb2121beb01cb07a.d: crates/trace/tests/trace_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_properties-fb2121beb01cb07a.rmeta: crates/trace/tests/trace_properties.rs Cargo.toml

crates/trace/tests/trace_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

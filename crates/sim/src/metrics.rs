//! Per-invocation records and run-level aggregates.
//!
//! Every figure in the paper reduces to these quantities: total/average
//! service time, total carbon footprint (service + keep-alive, embodied +
//! operational), per-invocation CDFs (Fig. 8), P95 latency, warm-start
//! rates, and eviction counts (Fig. 11).

use crate::pool::ExpiryStats;
use ecolife_carbon::CarbonFootprint;
use ecolife_hw::{Fleet, NodeId, Region};
use ecolife_trace::FunctionId;

/// Outcome of one invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationRecord {
    pub func: FunctionId,
    /// Arrival time (ms).
    pub t_ms: u64,
    /// The fleet node it executed on.
    pub exec_location: NodeId,
    /// Warm start?
    pub warm: bool,
    /// Service time (ms): queueing (bounded executors only) + setup +
    /// cold start (if any) + execution.
    pub service_ms: u64,
    /// Measured executor queueing delay included in `service_ms`.
    /// Always 0 when bounded executors are off (the fixed
    /// `setup_delay_ms` then stands in for queuing).
    pub queue_ms: u64,
    /// Turned away by admission control (bounded executors only): the
    /// invocation never executed, every cost field is zero, and
    /// `exec_location` is the node whose full queue rejected it.
    pub rejected: bool,
    /// Carbon emitted during the service period.
    pub service_carbon: CarbonFootprint,
    /// Carbon emitted keeping the function warm *after* this invocation
    /// (attributed when the container dies or is reused).
    pub keepalive_carbon: CarbonFootprint,
    /// Energy (kWh) over service + keep-alive (Energy-Opt's objective).
    pub energy_kwh: f64,
}

impl InvocationRecord {
    /// Total carbon attributed to this invocation (g).
    #[inline]
    pub fn total_carbon_g(&self) -> f64 {
        self.service_carbon.total_g() + self.keepalive_carbon.total_g()
    }
}

/// Aggregates over one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    pub records: Vec<InvocationRecord>,
    /// Keep-alives dropped entirely because no pool had room (the paper's
    /// "evicted functions" in Fig. 11).
    pub evicted_functions: u64,
    /// Containers displaced across fleet nodes by warm-pool adjustment.
    pub transfers: u64,
    /// Egress carbon (g) of priced cross-node migrations, charged at
    /// the *source* node's grid CI at transfer time. 0 under the
    /// default [`TransferCost::free`](ecolife_carbon::TransferCost)
    /// pricing.
    pub transfer_g: f64,
    /// Total transfer latency (ms) attached to migrated containers —
    /// each migrated container's next warm start pays its share on top
    /// of the service time.
    pub transfer_ms: u64,
    /// Egress carbon (g) by *source* node (index = `NodeId`): the grid
    /// that powered the send side owns the grams. Sized by the engine
    /// like `keepalive_g_by_node`; empty on a default value.
    pub transfer_g_by_node: Vec<f64>,
    /// Total wall-clock nanoseconds spent inside `Scheduler::decide`
    /// (the decision-making overhead the paper bounds at <0.4% of
    /// service time).
    pub decision_overhead_ns: u64,
    /// Keep-alive carbon (g) by hosting node (index = `NodeId`). Records
    /// attribute keep-alive to the *scheduling* invocation; this vector
    /// attributes the same grams to the node whose pool hosted the
    /// container, which is what per-node accounting needs when a
    /// transfer moves a container across nodes mid-keep-alive. The
    /// engine sizes it to the fleet; it is empty on a default value.
    pub keepalive_g_by_node: Vec<f64>,
    /// Containers revoked by the sharded engine's ledger reconciliation
    /// (optimistic cross-shard admissions rolled back at a period
    /// boundary; each is then transferred or evicted). Always 0 for
    /// sequential runs and whenever shards never contend for a node.
    pub reconcile_revocations: u64,
    /// Per-node peak warm-pool occupancy (MiB) observed *after* each
    /// reconciliation pass (index = `NodeId`). The sharded engine's
    /// capacity guarantee is exactly `ledger_peak_mib[n] <=
    /// keepalive_mem_mib[n]`; empty for sequential runs (whose pools
    /// enforce capacity on every insert).
    pub ledger_peak_mib: Vec<u64>,
    /// Total executor queueing delay (ms) by node whose executor the
    /// wait was measured on (index = `NodeId`). Sized by the engine like
    /// `keepalive_g_by_node`; empty on a default value and all-zero when
    /// bounded executors are off.
    pub queue_ms_by_node: Vec<u64>,
    /// Invocations turned away by admission control (bounded executors
    /// only). Each still pushes a zero-cost [`InvocationRecord`] with
    /// `rejected == true`, so record coverage stays total.
    pub rejected: u64,
    /// Per-node peak executor occupancy (simultaneously occupied slots;
    /// index = `NodeId`). Empty unless bounded executors ran; the
    /// sharded merge takes the elementwise max across shards.
    pub executor_peak_by_node: Vec<u32>,
    /// Expiry-machinery counters summed over every pool the run touched
    /// (`expired` is mode-independent; `timeline_pops`/`stale_pops`
    /// measure the timeline's lazy-invalidation overhead, `scanned` the
    /// reference scan's work — see [`ExpiryStats`]).
    pub expiry: ExpiryStats,
    /// Warm-pool MiB lost to ungraceful node crashes
    /// ([`FaultPlan`](crate::FaultPlan)'s `NodeCrash`): the resident set
    /// at each crash instant, settled and
    /// dropped with nothing transferred. 0 without faults.
    pub lost_warm_mib: u64,
    /// Invocations routed to a node that was crashed at arrival time.
    /// Each still pushes a zero-cost [`InvocationRecord`] with
    /// `rejected == true` (the `CrashRejected` event carries the cause).
    pub crash_rejected: u64,
    /// Minutes of last-known-good CI data served to fleet regions under
    /// `CiOutage` faults. Input-derived (outage calendar ∩ horizon), set
    /// once per run — not summed across shards.
    pub stale_ci_minutes: u64,
    /// Invocations placed by the carbon-agnostic fallback because some
    /// fleet region's CI feed was stale past the
    /// [`StalenessPolicy`](ecolife_carbon::StalenessPolicy) bound.
    pub degraded_decisions: u64,
    /// Keep-alive transfer attempts re-probed after a deterministic
    /// virtual-clock backoff because every candidate target was
    /// partitioned away or crashed.
    pub transfer_retries: u64,
}

impl RunMetrics {
    pub fn invocations(&self) -> usize {
        self.records.len()
    }

    pub fn warm_starts(&self) -> usize {
        self.records.iter().filter(|r| r.warm).count()
    }

    pub fn cold_starts(&self) -> usize {
        self.records.len() - self.warm_starts()
    }

    pub fn warm_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.warm_starts() as f64 / self.records.len() as f64
        }
    }

    /// Sum of service times (ms).
    pub fn total_service_ms(&self) -> u64 {
        self.records.iter().map(|r| r.service_ms).sum()
    }

    /// Sum of measured executor queueing delays (ms) — 0 unless bounded
    /// executors ran and some node saturated.
    pub fn total_queue_ms(&self) -> u64 {
        self.records.iter().map(|r| r.queue_ms).sum()
    }

    /// Mean service time (ms).
    pub fn mean_service_ms(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_service_ms() as f64 / self.records.len() as f64
        }
    }

    /// Total carbon footprint (g): service + keep-alive + migration
    /// egress.
    pub fn total_carbon_g(&self) -> f64 {
        self.records.iter().map(|r| r.total_carbon_g()).sum::<f64>() + self.transfer_g
    }

    /// Total carbon split (operational, embodied).
    pub fn carbon_split(&self) -> CarbonFootprint {
        self.records
            .iter()
            .map(|r| r.service_carbon + r.keepalive_carbon)
            .sum()
    }

    /// Total keep-alive carbon only (Fig. 1's numerator).
    pub fn total_keepalive_carbon_g(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.keepalive_carbon.total_g())
            .sum()
    }

    /// Total energy (kWh).
    pub fn total_energy_kwh(&self) -> f64 {
        self.records.iter().map(|r| r.energy_kwh).sum()
    }

    /// Service-time percentile (e.g. `0.95` for P95), by nearest-rank.
    pub fn service_percentile_ms(&self, q: f64) -> u64 {
        percentile(
            &mut self
                .records
                .iter()
                .map(|r| r.service_ms)
                .collect::<Vec<_>>(),
            q,
        )
    }

    /// Sorted per-invocation service times — CDF x-axis material (Fig. 8).
    pub fn service_cdf(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.records.iter().map(|r| r.service_ms).collect();
        v.sort_unstable();
        v
    }

    /// Sorted per-invocation carbon totals (g).
    pub fn carbon_cdf(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.records.iter().map(|r| r.total_carbon_g()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Total carbon (g) by fleet node: each node's hosted keep-alive,
    /// the service carbon of the executions placed on it, and the
    /// egress carbon of migrations it sourced. Sums to
    /// [`RunMetrics::total_carbon_g`]. The vector covers every node the
    /// engine simulated (zero-traffic nodes included).
    pub fn carbon_g_by_node(&self) -> Vec<f64> {
        let n = self
            .records
            .iter()
            .map(|r| r.exec_location.index() + 1)
            .chain([self.keepalive_g_by_node.len()])
            .chain([self.transfer_g_by_node.len()])
            .max()
            .unwrap_or(0);
        let mut by_node = vec![0.0; n];
        by_node[..self.keepalive_g_by_node.len()].copy_from_slice(&self.keepalive_g_by_node);
        for (node, g) in self.transfer_g_by_node.iter().enumerate() {
            by_node[node] += g;
        }
        for r in &self.records {
            by_node[r.exec_location.index()] += r.service_carbon.total_g();
        }
        by_node
    }

    /// Total carbon (g) by grid region of `fleet` — per-node totals
    /// ([`RunMetrics::carbon_g_by_node`]) grouped by each node's
    /// deployment region, in the fleet's first-appearance region order.
    /// This is how one multi-region run reports the paper's Fig. 14
    /// per-region comparison without five separate replays.
    pub fn carbon_g_by_region(&self, fleet: &Fleet) -> Vec<(Region, f64)> {
        let by_node = self.carbon_g_by_node();
        fleet
            .regions()
            .into_iter()
            .map(|r| {
                let total = fleet
                    .nodes_in_region(r)
                    .into_iter()
                    .map(|id| by_node.get(id.index()).copied().unwrap_or(0.0))
                    .sum();
                (r, total)
            })
            .collect()
    }

    /// Decision overhead as a fraction of total service time.
    pub fn decision_overhead_fraction(&self) -> f64 {
        let service_ns = self.total_service_ms() as f64 * 1e6;
        if service_ns == 0.0 {
            0.0
        } else {
            self.decision_overhead_ns as f64 / service_ns
        }
    }
}

/// Nearest-rank percentile of an unsorted slice (sorts in place).
pub fn percentile(values: &mut [u64], q: f64) -> u64 {
    assert!((0.0..=1.0).contains(&q));
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

/// `(a - b) / b` as a percentage — the "% increase w.r.t. X-Opt" quantity
/// every evaluation figure is plotted in.
pub fn percent_increase(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        100.0 * (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(service: u64, warm: bool, carbon: f64, ka: f64) -> InvocationRecord {
        InvocationRecord {
            func: FunctionId(0),
            t_ms: 0,
            exec_location: NodeId(1),
            warm,
            service_ms: service,
            queue_ms: 0,
            rejected: false,
            service_carbon: CarbonFootprint::new(carbon, 0.0),
            keepalive_carbon: CarbonFootprint::new(ka, 0.0),
            energy_kwh: 0.001,
        }
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            records: vec![
                rec(100, true, 0.1, 0.05),
                rec(300, false, 0.3, 0.0),
                rec(200, true, 0.2, 0.1),
                rec(400, false, 0.4, 0.0),
            ],
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_counts() {
        let m = metrics();
        assert_eq!(m.invocations(), 4);
        assert_eq!(m.warm_starts(), 2);
        assert_eq!(m.cold_starts(), 2);
        assert_eq!(m.warm_rate(), 0.5);
    }

    #[test]
    fn totals() {
        let m = metrics();
        assert_eq!(m.total_service_ms(), 1_000);
        assert_eq!(m.mean_service_ms(), 250.0);
        assert!((m.total_carbon_g() - 1.15).abs() < 1e-12);
        assert!((m.total_keepalive_carbon_g() - 0.15).abs() < 1e-12);
        assert!((m.total_energy_kwh() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let m = metrics();
        assert_eq!(m.service_percentile_ms(0.5), 200);
        assert_eq!(m.service_percentile_ms(0.95), 400);
        assert_eq!(m.service_percentile_ms(0.0), 100);
        assert_eq!(percentile(&mut [], 0.5), 0);
    }

    #[test]
    fn cdfs_sorted() {
        let m = metrics();
        assert_eq!(m.service_cdf(), vec![100, 200, 300, 400]);
        let cc = m.carbon_cdf();
        assert!(cc.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn percent_increase_basics() {
        assert_eq!(percent_increase(110.0, 100.0), 10.0);
        assert_eq!(percent_increase(100.0, 100.0), 0.0);
        assert_eq!(percent_increase(50.0, 0.0), 0.0);
        assert_eq!(percent_increase(90.0, 100.0), -10.0);
    }

    #[test]
    fn per_node_carbon_sums_to_total() {
        let mut m = metrics();
        // Two-node fleet; all four records executed on node 1, keep-alive
        // split across both nodes (0.05 transferred onto node 0).
        m.keepalive_g_by_node = vec![0.05, 0.10];
        let by_node = m.carbon_g_by_node();
        assert_eq!(by_node.len(), 2);
        assert!((by_node.iter().sum::<f64>() - m.total_carbon_g()).abs() < 1e-12);
        assert!((by_node[0] - 0.05).abs() < 1e-12);
        assert!((by_node[1] - (1.0 + 0.10)).abs() < 1e-12);
    }

    #[test]
    fn priced_transfers_stay_in_the_per_node_sum() {
        let mut m = metrics();
        m.keepalive_g_by_node = vec![0.05, 0.10];
        // Node 0 sourced priced migrations worth 0.02 g of egress.
        m.transfers = 3;
        m.transfer_g = 0.02;
        m.transfer_ms = 750;
        m.transfer_g_by_node = vec![0.02, 0.0];
        let by_node = m.carbon_g_by_node();
        assert!((by_node.iter().sum::<f64>() - m.total_carbon_g()).abs() < 1e-12);
        assert!((by_node[0] - 0.07).abs() < 1e-12);
        assert!((m.total_carbon_g() - 1.17).abs() < 1e-12);
    }

    #[test]
    fn per_region_carbon_groups_nodes() {
        use ecolife_hw::skus;
        let mut m = metrics(); // all executions on node 1
        m.keepalive_g_by_node = vec![0.05, 0.10];
        let fleet = ecolife_hw::Fleet::from(skus::pair_a())
            .with_region(NodeId(0), Region::Texas)
            .with_region(NodeId(1), Region::NewYork);
        let by_region = m.carbon_g_by_region(&fleet);
        assert_eq!(by_region.len(), 2);
        assert_eq!(by_region[0].0, Region::Texas);
        assert!((by_region[0].1 - 0.05).abs() < 1e-12);
        assert!((by_region[1].1 - 1.10).abs() < 1e-12);
        let total: f64 = by_region.iter().map(|(_, g)| g).sum();
        assert!((total - m.total_carbon_g()).abs() < 1e-12);
    }

    #[test]
    fn overhead_fraction() {
        let mut m = metrics();
        m.decision_overhead_ns = 1_000_000; // 1 ms over 1000 ms service
        assert!((m.decision_overhead_fraction() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.mean_service_ms(), 0.0);
        assert_eq!(m.warm_rate(), 0.0);
        assert_eq!(m.service_percentile_ms(0.95), 0);
    }
}

//! Scratch experiment: ablations + PSO budget sensitivity.
use ecolife_bench::EvalSetup;
use ecolife_core::EcoLifeConfig;

fn main() {
    let setup = EvalSetup::standard();
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("EcoLife(iters=8)", EcoLifeConfig::default()),
        (
            "EcoLife(iters=14)",
            EcoLifeConfig {
                pso_iters: 14,
                ..Default::default()
            },
        ),
        ("w/o DPSO", EcoLifeConfig::default().without_dynamic_pso()),
        (
            "w/o warm-adjust",
            EcoLifeConfig::default().without_warm_pool_adjustment(),
        ),
    ] {
        let s = setup.run(&mut setup.ecolife_with(cfg));
        rows.push((name, s));
    }
    let oracle = setup.run(&mut setup.oracle());
    rows.push(("Oracle", oracle));
    for (n, s) in &rows {
        println!(
            "{:<18} service {:>10}  carbon {:>8.2}  warm {:.3} evicted {:>5}",
            n, s.total_service_ms, s.total_carbon_g, s.warm_rate, s.evicted_functions
        );
    }
}

//! Cross-crate determinism: every stochastic component is seeded, so the
//! whole experiment pipeline must be bit-for-bit reproducible.

use ecolife::prelude::*;

fn full_run(seed: u64) -> (Vec<u64>, Vec<String>) {
    let trace = SynthTraceConfig {
        n_functions: 12,
        duration_min: 90,
        seed,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Texas, 120, seed);
    let pair = skus::pair_a().with_keepalive_budgets_mib(6 * 1024, 6 * 1024);
    let mut eco = EcoLife::new(pair.clone(), EcoLifeConfig::default());
    let (_, metrics) = run_scheme(&trace, &ci, &pair, &mut eco);
    (
        metrics.records.iter().map(|r| r.service_ms).collect(),
        metrics
            .records
            .iter()
            .map(|r| format!("{}:{}:{}", r.func, r.exec_location, r.warm))
            .collect(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    assert_eq!(full_run(11), full_run(11));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(full_run(11), full_run(12));
}

#[test]
fn trace_and_ci_generation_are_independent_of_ambient_state() {
    // Re-generate in a different order; artifacts must match exactly.
    let t1 = SynthTraceConfig::small(5).generate(&WorkloadCatalog::sebs());
    let c1 = CarbonIntensityTrace::synthetic(Region::Caiso, 100, 5);
    let c2 = CarbonIntensityTrace::synthetic(Region::Caiso, 100, 5);
    let t2 = SynthTraceConfig::small(5).generate(&WorkloadCatalog::sebs());
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
}

#[test]
fn all_schedulers_are_deterministic() {
    let trace = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 90, 3);
    let pair = skus::pair_a();

    let run = |mk: &dyn Fn() -> Box<dyn Scheduler>| {
        let mut s = mk();
        let (_, m) = run_scheme(&trace, &ci, &pair, &mut s);
        m.records
            .iter()
            .map(|r| (r.service_ms, r.warm))
            .collect::<Vec<_>>()
    };

    let factories: Vec<Box<dyn Fn() -> Box<dyn Scheduler>>> = vec![
        Box::new(|| Box::new(EcoLife::new(skus::pair_a(), EcoLifeConfig::default()))),
        Box::new(|| {
            Box::new(BruteForce::oracle(
                skus::pair_a(),
                CarbonIntensityTrace::synthetic(Region::Caiso, 90, 3),
            ))
        }),
        Box::new(|| Box::new(FixedPolicy::new_only())),
        Box::new(|| Box::new(FixedPolicy::old_only())),
    ];
    for f in &factories {
        assert_eq!(run(f.as_ref()), run(f.as_ref()));
    }
}

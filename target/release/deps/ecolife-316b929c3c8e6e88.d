/root/repo/target/release/deps/ecolife-316b929c3c8e6e88.d: src/lib.rs

/root/repo/target/release/deps/ecolife-316b929c3c8e6e88: src/lib.rs

src/lib.rs:

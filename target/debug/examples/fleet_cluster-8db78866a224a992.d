/root/repo/target/debug/examples/fleet_cluster-8db78866a224a992.d: examples/fleet_cluster.rs

/root/repo/target/debug/examples/fleet_cluster-8db78866a224a992: examples/fleet_cluster.rs

examples/fleet_cluster.rs:

/root/repo/target/release/deps/table1_hw_pairs-f68c78027bf3419b.d: crates/bench/benches/table1_hw_pairs.rs

/root/repo/target/release/deps/table1_hw_pairs-f68c78027bf3419b: crates/bench/benches/table1_hw_pairs.rs

crates/bench/benches/table1_hw_pairs.rs:

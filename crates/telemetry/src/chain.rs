//! Sequence numbering, hash chaining, and chain verification.
//!
//! Line format (one JSON object per line, fields in fixed order):
//!
//! ```text
//! {"seq":N,"prev":"<hex64>","type":"…",…payload…,"hash":"<hex64>"}
//! ```
//!
//! The hash is SHA-256 over the line's *head* — everything up to and
//! including the payload, closed with `}` — so `hash` covers `seq`,
//! `prev`, and the full payload. `prev` of event 0 is the 64-zero
//! genesis. Re-walking a stream therefore proves both integrity (no line
//! edited) and completeness (no line dropped or reordered); the chain
//! tip alone pins an entire run, which is what golden snapshots store.

use crate::event::{Event, EventKey};
use crate::json::{field, write_payload};
use crate::sha256::sha256_hex;
use crate::sink::EventSink;

/// `prev` of the first event.
pub const GENESIS: &str = "0000000000000000000000000000000000000000000000000000000000000000";

/// A finalized event: its stream position, the event itself, its line
/// hash, and the exact serialized line the JSONL sink writes.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedEvent {
    pub seq: u64,
    pub event: Event,
    pub hash: String,
    pub line: String,
}

/// What finalization (or a successful verify) reports about a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSummary {
    pub events: u64,
    /// Hash of the last event; [`GENESIS`] for an empty stream.
    pub tip: String,
}

/// The head of a line: everything the hash covers.
fn serialize_head(seq: u64, prev: &str, event: &Event) -> String {
    let mut head = String::with_capacity(192);
    head.push_str("{\"seq\":");
    head.push_str(&seq.to_string());
    head.push_str(",\"prev\":\"");
    head.push_str(prev);
    head.push_str("\",\"type\":\"");
    head.push_str(event.type_name());
    head.push('"');
    write_payload(event, &mut head);
    head.push('}');
    head
}

/// Close a head into the written line: swap the trailing `}` for
/// `,"hash":"…"}`.
fn seal(head: &str, hash: &str) -> String {
    let mut line = String::with_capacity(head.len() + 75);
    line.push_str(&head[..head.len() - 1]);
    line.push_str(",\"hash\":\"");
    line.push_str(hash);
    line.push_str("\"}");
    line
}

/// `,"hash":"<hex64>"}` — what [`seal`] appends in place of the head's
/// closing brace.
const SEAL_LEN: usize = 9 + 64 + 2;

/// Sort the collected events into canonical order, assign sequence
/// numbers, hash-chain, and emit through `sink`.
///
/// Keys must be unique (the engine's emission discipline guarantees it;
/// debug builds assert it): uniqueness is what makes the serialized
/// stream independent of collection order, and therefore byte-identical
/// between the sequential and sharded engines.
pub fn finalize<K: EventSink>(mut events: Vec<(EventKey, Event)>, sink: &mut K) -> ChainSummary {
    events.sort_by_key(|(key, _)| *key);
    debug_assert!(
        events.windows(2).all(|w| w[0].0 < w[1].0),
        "duplicate event key: stream order would be ambiguous"
    );

    let n = events.len() as u64;
    let mut prev = GENESIS.to_string();
    for (seq, (_, event)) in events.into_iter().enumerate() {
        let head = serialize_head(seq as u64, &prev, &event);
        let hash = sha256_hex(head.as_bytes());
        let line = seal(&head, &hash);
        sink.emit(&SequencedEvent {
            seq: seq as u64,
            event,
            hash: hash.clone(),
            line,
        });
        prev = hash;
    }
    sink.flush();
    ChainSummary {
        events: n,
        tip: prev,
    }
}

/// Where and why a chain walk failed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainError {
    /// Stream position (line number, 0-based) of the offending line.
    pub seq: u64,
    pub reason: String,
    pub line: String,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chain broken at seq {}: {}\n  {}",
            self.seq, self.reason, self.line
        )
    }
}

/// Incremental chain verification: feed lines one at a time as they
/// appear (a live `tail --follow`, a streaming reader) and fail at the
/// first break. [`verify_lines`] is a walk over a complete stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainWalker {
    prev: String,
    count: u64,
}

impl ChainWalker {
    pub fn new() -> Self {
        ChainWalker {
            prev: GENESIS.to_string(),
            count: 0,
        }
    }

    /// Lines verified so far.
    pub fn events(&self) -> u64 {
        self.count
    }

    /// Current chain tip ([`GENESIS`] before the first line).
    pub fn tip(&self) -> &str {
        &self.prev
    }

    /// Verify the next line: re-hash its head, check the embedded hash,
    /// the `prev` linkage against the walker's tip, and the sequence
    /// number. On success the walker advances; on failure it is
    /// unchanged (the same line can be retried after repair).
    pub fn push(&mut self, line: &str) -> Result<(), ChainError> {
        let err = |reason: String| ChainError {
            seq: self.count,
            reason,
            line: line.to_string(),
        };
        if line.len() <= SEAL_LEN || !line.ends_with("\"}") {
            return Err(err("not a sealed event line".into()));
        }
        let embedded = field(line, "hash")
            .and_then(|h| h.strip_prefix('"'))
            .and_then(|h| h.strip_suffix('"'))
            .ok_or_else(|| err("missing hash field".into()))?;
        let mut head = String::with_capacity(line.len());
        head.push_str(&line[..line.len() - SEAL_LEN]);
        head.push('}');
        let recomputed = sha256_hex(head.as_bytes());
        if recomputed != embedded {
            return Err(err(format!(
                "hash mismatch: line claims {embedded}, content hashes to {recomputed}"
            )));
        }
        let claimed_prev = field(line, "prev")
            .and_then(|p| p.strip_prefix('"'))
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| err("missing prev field".into()))?;
        if claimed_prev != self.prev {
            return Err(err(format!(
                "prev linkage broken: line claims {claimed_prev}, chain is at {}",
                self.prev
            )));
        }
        let seq = field(line, "seq")
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| err("missing seq field".into()))?;
        if seq != self.count {
            return Err(err(format!(
                "sequence gap: line claims seq {seq}, expected {}",
                self.count
            )));
        }
        self.prev = recomputed;
        self.count += 1;
        Ok(())
    }

    /// Close the walk into the summary a full [`verify_lines`] pass
    /// would have returned.
    pub fn summary(&self) -> ChainSummary {
        ChainSummary {
            events: self.count,
            tip: self.prev.clone(),
        }
    }
}

impl Default for ChainWalker {
    fn default() -> Self {
        ChainWalker::new()
    }
}

/// Re-walk a serialized stream: re-hash every line's head, check the
/// embedded hash, the `prev` linkage, and the sequence numbering.
/// Returns the verified [`ChainSummary`] or the first break.
pub fn verify_lines<'a, I>(lines: I) -> Result<ChainSummary, ChainError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut walker = ChainWalker::new();
    for line in lines {
        walker.push(line)?;
    }
    Ok(walker.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::lane;
    use crate::sink::CaptureSink;

    fn sample_events() -> Vec<(EventKey, Event)> {
        vec![
            (
                EventKey::new(2, lane::RUN_ENDED, 0, 0),
                Event::RunEnded {
                    invocations: 2,
                    transfers: 0,
                    evictions: 0,
                    revocations: 0,
                    expired: 1,
                },
            ),
            (
                EventKey::new(0, lane::RUN_STARTED, 0, 0),
                Event::RunStarted {
                    invocations: 2,
                    functions: 1,
                    nodes: 2,
                    horizon_ms: 60_000,
                },
            ),
            (
                EventKey::new(1, lane::INVOCATION, 0, 0),
                Event::DecisionMade {
                    index: 1,
                    func: 0,
                    t_ms: 60_000,
                    exec_node: 1,
                    warm: true,
                    ka_node: -1,
                    ka_ms: 0,
                },
            ),
        ]
    }

    #[test]
    fn finalize_sorts_chains_and_verifies() {
        let mut cap = CaptureSink::default();
        let summary = finalize(sample_events(), &mut cap);
        assert_eq!(summary.events, 3);
        assert_eq!(cap.events[0].event.type_name(), "RunStarted");
        assert_eq!(cap.events[2].event.type_name(), "RunEnded");
        assert_eq!(summary.tip, cap.events[2].hash);
        let verified = verify_lines(cap.lines()).expect("fresh stream verifies");
        assert_eq!(verified, summary);
    }

    #[test]
    fn collection_order_does_not_change_bytes() {
        let mut a = CaptureSink::default();
        let mut b = CaptureSink::default();
        finalize(sample_events(), &mut a);
        let mut reversed = sample_events();
        reversed.reverse();
        finalize(reversed, &mut b);
        assert_eq!(a.lines(), b.lines());
    }

    #[test]
    fn tampering_breaks_the_chain_at_the_edited_line() {
        let mut cap = CaptureSink::default();
        finalize(sample_events(), &mut cap);
        let mut lines: Vec<String> = cap.lines().iter().map(|s| s.to_string()).collect();
        lines[1] = lines[1].replace("\"warm\":true", "\"warm\":false");
        let err = verify_lines(lines.iter().map(|s| s.as_str())).unwrap_err();
        assert_eq!(err.seq, 1);
        assert!(err.reason.contains("hash mismatch"), "{}", err.reason);
    }

    #[test]
    fn dropping_a_line_breaks_prev_linkage() {
        let mut cap = CaptureSink::default();
        finalize(sample_events(), &mut cap);
        let lines: Vec<&str> = cap.lines().to_vec();
        let err = verify_lines([lines[0], lines[2]]).unwrap_err();
        assert_eq!(err.seq, 1);
        assert!(err.reason.contains("prev linkage"), "{}", err.reason);
    }

    #[test]
    fn empty_stream_tip_is_genesis() {
        let mut cap = CaptureSink::default();
        let summary = finalize(Vec::new(), &mut cap);
        assert_eq!(summary.tip, GENESIS);
        assert_eq!(verify_lines([]).unwrap().tip, GENESIS);
    }
}

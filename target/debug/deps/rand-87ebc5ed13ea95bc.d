/root/repo/target/debug/deps/rand-87ebc5ed13ea95bc.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-87ebc5ed13ea95bc.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

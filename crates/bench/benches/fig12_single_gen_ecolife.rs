//! Fig. 12 — Eco-Old / Eco-New: EcoLife's machinery restricted to a
//! single hardware generation, against the multi-generation Oracle.
//!
//! Paper shape: Eco-Old pays in service time, Eco-New pays in carbon;
//! full EcoLife (multi-generation) is closest to the Oracle on both
//! axes, but the single-generation variants remain viable.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_core::{compare, EcoLifeConfig};
use ecolife_hw::Generation;
use std::hint::black_box;

fn print_fig12() {
    let setup = EvalSetup::standard();
    let oracle = setup.run(&mut setup.oracle());
    let eco = setup.run(&mut setup.ecolife());
    let eco_old =
        setup.run(&mut setup.ecolife_with(EcoLifeConfig::default().restricted_to(Generation::Old)));
    let eco_new =
        setup.run(&mut setup.ecolife_with(EcoLifeConfig::default().restricted_to(Generation::New)));

    println!("\n=== Fig. 12: single-generation EcoLife vs the multi-generation Oracle ===");
    println!(
        "{:<10} {:>16} {:>16}",
        "scheme", "svc vs Oracle", "CO2 vs Oracle"
    );
    for (label, s) in [
        ("EcoLife", &eco),
        ("Eco-Old", &eco_old),
        ("Eco-New", &eco_new),
    ] {
        let c = compare(s, &oracle, &oracle);
        println!(
            "{:<10} {:>15.1}% {:>15.1}%",
            label, c.service_increase_pct, c.carbon_increase_pct
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig12();
    let setup = EvalSetup::quick();
    c.bench_function("fig12/eco_old_quick", |b| {
        b.iter(|| {
            black_box(setup.run(
                &mut setup.ecolife_with(EcoLifeConfig::default().restricted_to(Generation::Old)),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

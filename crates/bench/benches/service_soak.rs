//! Live-service soak: streaming ingest + bounded executors vs the
//! batch replayer, on the ~10⁵-invocation synthetic workload.
//!
//! The service re-derives the batch engine per arrival (push into the
//! growing trace, one `Engine::ingest` step), so its throughput is the
//! price of going live. This bench records:
//!
//! * **batch** — the replayer as-is (executors off), the PR-8 baseline;
//! * **batch + executors** — bounded per-node executors and queue-aware
//!   EcoLife placement on the same workload (the admission/queueing
//!   bookkeeping cost);
//! * **service (in-process)** — the same executor run driven through
//!   [`Service`] over a `TraceSource`, asserted record-identical;
//! * **service (4 lanes)** — the same stream produced by 4 threads over
//!   bounded channel lanes, the full live-ingest path.
//!
//! Headline numbers land in `BENCH_service.json` at the repo root.
//!
//! Smoke mode (`SERVICE_BENCH_SMOKE=1`, the CI `service-smoke` job): a
//! saturating burst that *asserts* rejections fire and the service
//! replays the batch engine record for record — in-process and over
//! lanes — without the multi-second full measurement.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecolife_bench::report::BenchJson;
use ecolife_carbon::{CarbonIntensityTrace, Region};
use ecolife_core::{EcoLife, EcoLifeConfig};
use ecolife_hw::{skus, Fleet};
use ecolife_service::Service;
use ecolife_sim::{ExecutorConfig, RunMetrics, SimConfig, Simulation, MINUTE_MS};
use ecolife_trace::{
    live_lanes, FunctionId, FunctionProfile, Invocation, SynthTraceConfig, Trace, WorkloadCatalog,
};
use std::time::Instant;

const SEED: u64 = 41;
const LANES: usize = 4;

fn wall_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn executor_config() -> SimConfig {
    SimConfig::default().with_bounded_executors(ExecutorConfig::default())
}

fn queue_aware(fleet: &Fleet) -> EcoLife {
    EcoLife::new(
        fleet.clone(),
        EcoLifeConfig::default().with_queue_aware_placement(),
    )
}

/// Stream `trace` through the service from `producers` threads over
/// bounded lanes (contiguous time chunks, the lane contract).
fn serve_over_lanes(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: &Fleet,
    config: SimConfig,
    producers: usize,
) -> RunMetrics {
    let all = trace.invocations();
    let (handles, source) = live_lanes(producers, 1024);
    let chunk = all.len().div_ceil(producers);
    std::thread::scope(|scope| {
        for (handle, part) in handles.into_iter().zip(all.chunks(chunk)) {
            scope.spawn(move || {
                for &inv in part {
                    handle.send(inv).expect("service outlives producers");
                }
            });
        }
        Service::new(trace.catalog().clone(), ci, fleet.clone())
            .with_config(config)
            .serve(source, &mut queue_aware(fleet))
            .expect("in-order stream over a known catalog")
    })
}

/// Saturating burst: four multi-second functions arriving every 5 ms
/// overrun the pair-A executors and their admission bound.
fn burst_trace() -> Trace {
    let catalog = WorkloadCatalog::new(vec![
        FunctionProfile::new("hog-a", 2_500, 900, 512, 0.6),
        FunctionProfile::new("hog-b", 3_000, 1_100, 640, 0.5),
        FunctionProfile::new("hog-c", 2_000, 800, 512, 0.7),
        FunctionProfile::new("hog-d", 3_500, 1_200, 768, 0.4),
    ]);
    let mut invocations: Vec<Invocation> = (0..480u64)
        .map(|i| Invocation {
            func: FunctionId((i % 4) as u32),
            t_ms: i * 5,
        })
        .collect();
    invocations.push(Invocation {
        func: FunctionId(0),
        t_ms: 2 * MINUTE_MS,
    });
    Trace::new(catalog, invocations)
}

/// Saturating-burst smoke: rejections fire, service ≡ batch, sub-second.
fn smoke() {
    let trace = burst_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();

    let mut batch = None;
    let batch_ms = wall_ms(|| {
        batch = Some(
            Simulation::new(&trace, &ci, fleet.clone())
                .with_config(executor_config())
                .run(&mut queue_aware(&fleet)),
        );
    });
    let batch = batch.unwrap();
    assert!(batch.rejected > 0, "smoke burst must overflow admission");
    assert!(batch.total_queue_ms() > 0, "smoke burst must queue");

    let mut in_process = None;
    let in_process_ms = wall_ms(|| {
        in_process = Some(
            Service::new(trace.catalog().clone(), &ci, fleet.clone())
                .with_config(executor_config())
                .serve(trace.source(), &mut queue_aware(&fleet))
                .expect("trace source is in order"),
        );
    });
    let in_process = in_process.unwrap();
    assert_eq!(
        in_process.records, batch.records,
        "smoke: service changed a record"
    );
    assert_eq!(in_process.rejected, batch.rejected);

    let laned = serve_over_lanes(&trace, &ci, &fleet, executor_config(), 2);
    assert_eq!(
        laned.records, batch.records,
        "smoke: laned service changed a record"
    );
    println!(
        "smoke ok: {} invocations, {} rejected, {:.1} s queued; batch {batch_ms:.0} ms vs \
         service {in_process_ms:.0} ms, records bit-identical (in-process and 2-lane)",
        trace.len(),
        batch.rejected,
        batch.total_queue_ms() as f64 / 1e3,
    );
}

fn write_json() {
    let trace = SynthTraceConfig {
        n_functions: 600,
        duration_min: 600,
        seed: SEED,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, SEED);
    let fleet = skus::fleet_a();

    let plain_sim = Simulation::new(&trace, &ci, fleet.clone());
    let exec_sim = Simulation::new(&trace, &ci, fleet.clone()).with_config(executor_config());

    let batch_ms = wall_ms(|| {
        let mut s = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
        black_box(plain_sim.run(&mut s));
    });
    let mut exec_metrics = None;
    let batch_exec_ms = wall_ms(|| {
        let mut s = queue_aware(&fleet);
        exec_metrics = Some(exec_sim.run(&mut s));
    });
    let exec_metrics = exec_metrics.unwrap();

    let mut service_metrics = None;
    let service_ms = wall_ms(|| {
        service_metrics = Some(
            Service::new(trace.catalog().clone(), &ci, fleet.clone())
                .with_config(executor_config())
                .serve(trace.source(), &mut queue_aware(&fleet))
                .expect("trace source is in order"),
        );
    });
    let service_metrics = service_metrics.unwrap();
    assert_eq!(
        service_metrics.records, exec_metrics.records,
        "soak: service must replay the batch executor run bit for bit"
    );

    let mut laned_metrics = None;
    let service_lanes_ms = wall_ms(|| {
        laned_metrics = Some(serve_over_lanes(
            &trace,
            &ci,
            &fleet,
            executor_config(),
            LANES,
        ));
    });
    let laned_metrics = laned_metrics.unwrap();
    assert_eq!(laned_metrics.records, exec_metrics.records);

    let inv_per_s = |ms: f64| trace.len() as f64 / (ms / 1e3).max(1e-9);
    BenchJson::new("service_soak", SEED, trace.len())
        .int("trace_functions", trace.catalog().len() as u64)
        .int("fleet_nodes", fleet.len() as u64)
        .int("lanes", LANES as u64)
        .float("batch_ms", batch_ms, 0)
        .float("batch_executors_ms", batch_exec_ms, 0)
        .float("service_in_process_ms", service_ms, 0)
        .float("service_lanes_ms", service_lanes_ms, 0)
        .float("batch_inv_per_s", inv_per_s(batch_ms), 0)
        .float("service_inv_per_s", inv_per_s(service_ms), 0)
        .float("service_overhead", service_ms / batch_exec_ms.max(1.0), 2)
        .int("rejected", exec_metrics.rejected)
        .float("queue_s", exec_metrics.total_queue_ms() as f64 / 1e3, 1)
        .text(
            "note",
            "batch_ms replays with executors off (the PR-8 engine); batch_executors_ms adds \
             bounded per-node executors + queue-aware EcoLife placement; service rows drive the \
             identical run through the live service (tests/service.rs pins record identity) — \
             in-process over a TraceSource, then produced by 4 threads over bounded channel \
             lanes. service_overhead is service_in_process_ms / batch_executors_ms: the price of \
             per-arrival ingest into the growing trace.",
        )
        .write("BENCH_service.json");
}

fn bench(c: &mut Criterion) {
    let smoke_flag = std::env::var("SERVICE_BENCH_SMOKE").unwrap_or_default();
    if !smoke_flag.is_empty() && smoke_flag != "0" {
        smoke();
        return;
    }

    write_json();

    // Interactive loop on the saturating burst so `cargo bench
    // service_soak` stays quick.
    let trace = burst_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();
    c.bench_function("service/burst_batch", |b| {
        b.iter(|| {
            let mut s = queue_aware(&fleet);
            black_box(
                Simulation::new(&trace, &ci, fleet.clone())
                    .with_config(executor_config())
                    .run(&mut s),
            )
        })
    });
    c.bench_function("service/burst_in_process", |b| {
        b.iter(|| {
            black_box(
                Service::new(trace.catalog().clone(), &ci, fleet.clone())
                    .with_config(executor_config())
                    .serve(trace.source(), &mut queue_aware(&fleet))
                    .expect("trace source is in order"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);

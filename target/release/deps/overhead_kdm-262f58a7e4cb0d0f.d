/root/repo/target/release/deps/overhead_kdm-262f58a7e4cb0d0f.d: crates/bench/benches/overhead_kdm.rs

/root/repo/target/release/deps/overhead_kdm-262f58a7e4cb0d0f: crates/bench/benches/overhead_kdm.rs

crates/bench/benches/overhead_kdm.rs:
